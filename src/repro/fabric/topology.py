"""Topology builders: fat-trees, leaf-spine, and chains of SwitchHosts.

Every builder emits a :class:`FabricBed` -- a :class:`~repro.bench.
testbed.Testbed` whose medium is a set of point-to-point wires joining
edge hosts (full protocol stacks) to programmed :class:`SwitchHost`\\ s.
Addressing, NIC addresses, wire order, and table programs are all pure
functions of the topology parameters, which is what lets a partitioned
build derive its half of a cross-partition link without ever seeing the
other side.

Fat-tree layout (k even): ``k`` pods, each with ``k/2`` edge and ``k/2``
aggregation switches, ``(k/2)^2`` cores; hosts hang off edge switches
(``hosts_per_edge`` per edge, default 1).  Host (pod ``p``, edge ``e``,
slot ``s``) owns IP ``10.p.e.(s+2)``; edges hold /32s plus an ECMP
default up, aggs hold per-edge /24s plus an ECMP default up, cores hold
per-pod /16s.  Partitioned builds split pods contiguously across
partitions; partition 0 additionally owns every core switch, and each
agg-to-core wire whose ends land in different partitions becomes a
:class:`~repro.hw.link.BoundaryChannel` pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bench.testbed import Testbed
from ..core.plexus import PlexusStack
from ..hw.alpha import ALPHA_21064, CostTable
from ..hw.link import BoundaryChannel, PointToPointLink
from ..hw.nic import FabricNic
from ..net.headers import ip_aton
from ..sim import Engine
from ..spin.kernel import SpinKernel
from ..unixos.kernelnet import UnixKernel, UnixStack
from ..unixos.sockets import SocketLayer
from .switch import SwitchHost
from .table import Forward, MatchTable

__all__ = ["FabricBed", "fat_tree", "fat_tree_partition", "leaf_spine",
           "linear_chain", "schedule_core_avoidance", "fat_tree_core_wires",
           "FABRIC_BANDWIDTH_BPS", "FABRIC_PROPAGATION_US"]

FABRIC_BANDWIDTH_BPS = 1e9
FABRIC_PROPAGATION_US = 1.0
HOST_LINK_PROPAGATION_US = 0.5


class FabricBed(Testbed):
    """A testbed whose medium is a programmed multi-hop switch fabric."""

    def __init__(self, engine: Engine, os_name: str, device: str):
        super().__init__(engine, os_name, device)
        self.switches: List[SwitchHost] = []
        self.links: List[object] = []          # wires + boundary halves
        self.wire_names: List[str] = []
        self.wires_by_name: Dict[str, int] = {}
        #: (pod, edge, slot) per edge host, aligned with ``stacks``
        self.host_locator: List[Tuple[int, int, int]] = []
        self.edge_switches: Dict[Tuple[int, int], SwitchHost] = {}
        self.agg_switches: Dict[Tuple[int, int], SwitchHost] = {}
        self.core_switches: Dict[int, SwitchHost] = {}

    def media(self) -> List[object]:
        return list(self.links)

    def add_wire(self, link, name: str) -> None:
        self.wires_by_name[name] = len(self.links)
        self.links.append(link)
        self.wire_names.append(name)

    def switch_conservation(self) -> List[str]:
        """Per-switch frame-conservation violations (empty when sound)."""
        problems = []
        for switch in self.switches:
            accepted = sum(port.received for port in switch.ports)
            fated = switch.pipeline_forwarded + switch.pipeline_dropped
            if accepted != switch.pipeline_packets or fated != accepted:
                problems.append(
                    "%s: accepted=%d pipeline=%d forwarded=%d dropped=%d"
                    % (switch.name, accepted, switch.pipeline_packets,
                       switch.pipeline_forwarded, switch.pipeline_dropped))
        return problems


# ---------------------------------------------------------------------------
# shared pieces
# ---------------------------------------------------------------------------

def _new_switch(engine, name: str, costs: CostTable,
                ecmp_seed: int) -> SwitchHost:
    return SwitchHost(SpinKernel(engine, name, costs=costs), name=name,
                      ecmp_seed=ecmp_seed)


def _add_edge_host(bed: FabricBed, os_name: str, name: str, nic_addr: str,
                   my_ip: int, neighbors: Dict[int, str], deliver_mode: str,
                   costs: CostTable) -> None:
    engine = bed.engine
    nic = FabricNic(engine, "fab0", nic_addr)
    if os_name == "spin":
        host = SpinKernel(engine, name, costs=costs)
    else:
        host = UnixKernel(engine, name, costs=costs)
    host.add_nic(nic)
    bed.hosts.append(host)
    bed.nics.append(nic)
    bed.ips.append(my_ip)
    if os_name == "spin":
        stack = PlexusStack(host, nic, my_ip, deliver_mode=deliver_mode,
                            link="raw", neighbors=neighbors)
        bed.sockets.append(None)
    else:
        stack = UnixStack(host, nic, my_ip, link="raw", neighbors=neighbors)
        bed.sockets.append(SocketLayer(stack))
    bed.stacks.append(stack)


def _wire(bed: FabricBed, nic_a, nic_b, name: str,
          propagation_us: float = FABRIC_PROPAGATION_US) -> None:
    link = PointToPointLink(bed.engine, bandwidth_bps=FABRIC_BANDWIDTH_BPS,
                            propagation_us=propagation_us)
    link.attach(nic_a)
    link.attach(nic_b)
    bed.add_wire(link, name)


def _boundary(bed: FabricBed, nic, channel_id: str, name: str) -> None:
    half = BoundaryChannel(bed.engine, channel_id,
                           bandwidth_bps=FABRIC_BANDWIDTH_BPS,
                           propagation_us=FABRIC_PROPAGATION_US)
    half.attach(nic)
    bed.add_wire(half, name)


# ---------------------------------------------------------------------------
# fat-tree
# ---------------------------------------------------------------------------

def _ft_host_ip(p: int, e: int, s: int) -> int:
    return ip_aton("10.%d.%d.%d" % (p, e, s + 2))


def _ft_host_addr(p: int, e: int, s: int) -> str:
    return "fh-p%de%ds%d" % (p, e, s)


def _ft_edge_addr(p: int, e: int, port: int) -> str:
    return "fe-p%de%d.%d" % (p, e, port)


def _ft_agg_addr(p: int, a: int, port: int) -> str:
    return "fa-p%da%d.%d" % (p, a, port)


def _ft_core_addr(c: int, port: int) -> str:
    return "fc-c%d.%d" % (c, port)


def _validate_fat_tree(k: int, hosts_per_edge: int) -> int:
    if k < 2 or k % 2:
        raise ValueError("fat-tree k must be an even integer >= 2, got %r" % k)
    half = k // 2
    if not 1 <= hosts_per_edge <= half:
        raise ValueError("hosts_per_edge must be in 1..k/2")
    return half


def _build_fat_tree(engine, os_name: str, k: int, hosts_per_edge: int,
                    owned_pods: List[int], own_cores: bool, boundary: bool,
                    ecmp_seed: int, deliver_mode: str,
                    costs: CostTable) -> FabricBed:
    """The one fat-tree assembler: full beds and shards share it.

    ``owned_pods`` are built locally; with ``boundary`` set, agg-to-core
    wires whose other end is not local become BoundaryChannel halves
    (channel ids are pure functions of (pod, agg, core)).
    """
    half = _validate_fat_tree(k, hosts_per_edge)
    bed = FabricBed(engine, os_name, "fabric")
    bed.fat_tree_k = k
    bed.hosts_per_edge = hosts_per_edge
    bed.owned_pods = list(owned_pods)

    # Static neighbor map: every other host in the *whole* fabric is
    # reached via the sender's own edge-switch uplink, so the map is the
    # same shape on every partition.
    all_hosts = [(p, e, s) for p in range(k) for e in range(half)
                 for s in range(hosts_per_edge)]

    # Edge hosts, interleaved across pods so adjacent indices sit in
    # different pods (chaos workloads drive stacks[0] <-> stacks[1] and
    # must cross the core).
    for e in range(half):
        for s in range(hosts_per_edge):
            for p in owned_pods:
                my_ip = _ft_host_ip(p, e, s)
                neighbors = {
                    _ft_host_ip(op, oe, os_): _ft_edge_addr(p, e, s)
                    for (op, oe, os_) in all_hosts
                    if (op, oe, os_) != (p, e, s)}
                _add_edge_host(bed, os_name, "fab-h-p%de%ds%d" % (p, e, s),
                               _ft_host_addr(p, e, s), my_ip, neighbors,
                               deliver_mode, costs)
                bed.host_locator.append((p, e, s))

    # Edge switches: ports 0..hpe-1 face hosts, hpe..hpe+half-1 face aggs.
    for p in owned_pods:
        for e in range(half):
            switch = _new_switch(engine, "fab-e-p%de%d" % (p, e), costs,
                                 ecmp_seed)
            for s in range(hosts_per_edge):
                nic = FabricNic(engine, "p%d" % s, _ft_edge_addr(p, e, s))
                switch.add_port(nic, peer_addr=_ft_host_addr(p, e, s))
            for a in range(half):
                port = hosts_per_edge + a
                nic = FabricNic(engine, "p%d" % port, _ft_edge_addr(p, e, port))
                switch.add_port(nic, peer_addr=_ft_agg_addr(p, a, e))
            table = switch.add_table(MatchTable("l3", "dst_ip", kind="lpm"))
            for s in range(hosts_per_edge):
                table.set(_ft_host_ip(p, e, s), (Forward(s),), prefix_len=32)
            uplinks = tuple(range(hosts_per_edge, hosts_per_edge + half))
            table.set(0, (Forward(*uplinks),), prefix_len=0)
            bed.edge_switches[(p, e)] = switch
            bed.switches.append(switch)

    # Aggregation switches: ports 0..half-1 face edges, half.. face cores.
    for p in owned_pods:
        for a in range(half):
            switch = _new_switch(engine, "fab-a-p%da%d" % (p, a), costs,
                                 ecmp_seed)
            for e in range(half):
                nic = FabricNic(engine, "p%d" % e, _ft_agg_addr(p, a, e))
                switch.add_port(
                    nic, peer_addr=_ft_edge_addr(p, e, hosts_per_edge + a))
            for j in range(half):
                c = a * half + j
                port = half + j
                nic = FabricNic(engine, "p%d" % port, _ft_agg_addr(p, a, port))
                switch.add_port(nic, peer_addr=_ft_core_addr(c, p))
            table = switch.add_table(MatchTable("l3", "dst_ip", kind="lpm"))
            for e in range(half):
                table.set(ip_aton("10.%d.%d.0" % (p, e)), (Forward(e),),
                          prefix_len=24)
            uplinks = tuple(range(half, 2 * half))
            table.set(0, (Forward(*uplinks),), prefix_len=0)
            bed.agg_switches[(p, a)] = switch
            bed.switches.append(switch)

    # Core switches: port p faces pod p's agg c//half.
    if own_cores:
        for c in range(half * half):
            switch = _new_switch(engine, "fab-c%d" % c, costs, ecmp_seed)
            a = c // half
            for p in range(k):
                nic = FabricNic(engine, "p%d" % p, _ft_core_addr(c, p))
                switch.add_port(
                    nic, peer_addr=_ft_agg_addr(p, a, half + (c % half)))
            table = switch.add_table(MatchTable("l3", "dst_ip", kind="lpm"))
            for p in range(k):
                table.set(ip_aton("10.%d.0.0" % p), (Forward(p),),
                          prefix_len=16)
            bed.core_switches[c] = switch
            bed.switches.append(switch)

    # Switch kernels join the host list (conservation laws sweep them);
    # their port NICs join the NIC list.
    for switch in bed.switches:
        bed.hosts.append(switch.host)
        bed.nics.extend(port.nic for port in switch.ports)

    # Wires, in canonical order: host links, edge-agg, agg-core.
    owned = set(owned_pods)
    for p in owned_pods:
        for e in range(half):
            switch = bed.edge_switches[(p, e)]
            for s in range(hosts_per_edge):
                host_index = bed.host_locator.index((p, e, s))
                _wire(bed, bed.nics[host_index], switch.ports[s].nic,
                      "host:p%de%ds%d" % (p, e, s),
                      propagation_us=HOST_LINK_PROPAGATION_US)
    for p in owned_pods:
        for e in range(half):
            for a in range(half):
                _wire(bed,
                      bed.edge_switches[(p, e)].ports[hosts_per_edge + a].nic,
                      bed.agg_switches[(p, a)].ports[e].nic,
                      "edge-agg:p%de%da%d" % (p, e, a))
    for p in range(k):
        for a in range(half):
            for j in range(half):
                c = a * half + j
                name = "agg-core:p%da%dc%d" % (p, a, c)
                channel_id = "fabc:p%da%dc%d" % (p, a, c)
                agg_local = p in owned
                if agg_local and own_cores:
                    _wire(bed, bed.agg_switches[(p, a)].ports[half + j].nic,
                          bed.core_switches[c].ports[p].nic, name)
                elif agg_local and boundary:
                    _boundary(bed, bed.agg_switches[(p, a)].ports[half + j].nic,
                              channel_id, name)
                elif own_cores and not agg_local and boundary:
                    _boundary(bed, bed.core_switches[c].ports[p].nic,
                              channel_id, name)
    return bed


def fat_tree(k: int, os_name: str = "spin", hosts_per_edge: int = 1,
             engine: Optional[Engine] = None, ecmp_seed: int = 1996,
             deliver_mode: str = "interrupt",
             costs: CostTable = ALPHA_21064) -> FabricBed:
    """A full k-ary fat-tree on one engine."""
    engine = engine or Engine()
    return _build_fat_tree(engine, os_name, k, hosts_per_edge,
                           owned_pods=list(range(k)), own_cores=True,
                           boundary=False, ecmp_seed=ecmp_seed,
                           deliver_mode=deliver_mode, costs=costs)


def fat_tree_partition(k: int, index: int, n_partitions: int, engine,
                       os_name: str = "spin", hosts_per_edge: int = 1,
                       ecmp_seed: int = 1996,
                       deliver_mode: str = "interrupt",
                       costs: CostTable = ALPHA_21064) -> FabricBed:
    """Partition ``index`` of a fat-tree sharded across ``n_partitions``.

    Pods are split contiguously; partition 0 additionally owns all core
    switches.  Every agg-to-core wire crossing partitions becomes a pair
    of BoundaryChannel halves whose ids both sides derive statically.
    """
    if n_partitions < 1 or k % n_partitions:
        raise ValueError(
            "n_partitions must divide the pod count k=%d, got %d"
            % (k, n_partitions))
    if not 0 <= index < n_partitions:
        raise ValueError("index %d outside 0..%d" % (index, n_partitions - 1))
    per = k // n_partitions
    owned = list(range(index * per, (index + 1) * per))
    bed = _build_fat_tree(engine, os_name, k, hosts_per_edge,
                          owned_pods=owned, own_cores=(index == 0),
                          boundary=(n_partitions > 1), ecmp_seed=ecmp_seed,
                          deliver_mode=deliver_mode, costs=costs)
    bed.partition_index = index
    return bed


def fat_tree_core_wires(k: int, hosts_per_edge: int = 1,
                        core: Optional[int] = None) -> Tuple[int, ...]:
    """Indexes (``bed.media()`` order) of the agg-to-core wires of a full
    :func:`fat_tree` bed -- all of them, or just the ones touching
    ``core``.  Pure arithmetic over the canonical wire order (host links,
    then edge-agg, then agg-core), so campaign corpora can name a core
    link without building a bed.
    """
    half = _validate_fat_tree(k, hosts_per_edge)
    base = k * half * hosts_per_edge + k * half * half
    wires = []
    offset = 0
    for _p in range(k):
        for a in range(half):
            for j in range(half):
                if core is None or a * half + j == core:
                    wires.append(base + offset)
                offset += 1
    return tuple(wires)


def schedule_core_avoidance(bed: FabricBed, at_us: float,
                            core_index: int) -> None:
    """At ``at_us``, reprogram every agg uplinked to ``core_index`` to
    ECMP around it -- the control-plane reaction to a flapping core link.

    The update is a plain table write at a scheduled simulated time, so
    it is bit-identical across runs and executors; any flow cached
    through the dispatcher keeps its plans (guards are unaffected) and
    still sees the new route on its very next packet.
    """
    half = bed.fat_tree_k // 2
    a = core_index // half
    j = core_index % half
    survivors = tuple(half + jj for jj in range(half) if jj != j)
    if not survivors:
        raise ValueError("cannot avoid the only core of agg %d" % a)

    def apply(_event=None) -> None:
        for (p, agg), switch in sorted(bed.agg_switches.items()):
            if agg != a:
                continue
            switch.tables[0].set(0, (Forward(*survivors),), prefix_len=0)
    bed.engine.call_at(at_us, apply)


# ---------------------------------------------------------------------------
# leaf-spine and chains
# ---------------------------------------------------------------------------

def leaf_spine(spines: int, leaves: int, os_name: str = "spin",
               hosts_per_leaf: int = 1, engine: Optional[Engine] = None,
               ecmp_seed: int = 1996, deliver_mode: str = "interrupt",
               costs: CostTable = ALPHA_21064) -> FabricBed:
    """A two-tier leaf-spine fabric: every leaf uplinks to every spine."""
    if spines < 1 or leaves < 2:
        raise ValueError("leaf-spine needs >= 1 spine and >= 2 leaves")
    if hosts_per_leaf < 1:
        raise ValueError("hosts_per_leaf must be >= 1")
    engine = engine or Engine()
    bed = FabricBed(engine, os_name, "fabric")

    def host_ip(l: int, s: int) -> int:
        return ip_aton("10.0.%d.%d" % (l, s + 2))

    def host_addr(l: int, s: int) -> str:
        return "fh-l%ds%d" % (l, s)

    def leaf_addr(l: int, port: int) -> str:
        return "fl-l%d.%d" % (l, port)

    def spine_addr(sp: int, port: int) -> str:
        return "fs-s%d.%d" % (sp, port)

    all_hosts = [(l, s) for l in range(leaves) for s in range(hosts_per_leaf)]
    for s in range(hosts_per_leaf):
        for l in range(leaves):
            neighbors = {host_ip(ol, os_): leaf_addr(l, s)
                         for (ol, os_) in all_hosts if (ol, os_) != (l, s)}
            _add_edge_host(bed, os_name, "fab-h-l%ds%d" % (l, s),
                           host_addr(l, s), host_ip(l, s), neighbors,
                           deliver_mode, costs)
            bed.host_locator.append((0, l, s))

    leaf_switches = []
    for l in range(leaves):
        switch = _new_switch(engine, "fab-l%d" % l, costs, ecmp_seed)
        for s in range(hosts_per_leaf):
            switch.add_port(FabricNic(engine, "p%d" % s, leaf_addr(l, s)),
                            peer_addr=host_addr(l, s))
        for sp in range(spines):
            port = hosts_per_leaf + sp
            switch.add_port(FabricNic(engine, "p%d" % port, leaf_addr(l, port)),
                            peer_addr=spine_addr(sp, l))
        table = switch.add_table(MatchTable("l3", "dst_ip", kind="lpm"))
        for s in range(hosts_per_leaf):
            table.set(host_ip(l, s), (Forward(s),), prefix_len=32)
        uplinks = tuple(range(hosts_per_leaf, hosts_per_leaf + spines))
        table.set(0, (Forward(*uplinks),), prefix_len=0)
        leaf_switches.append(switch)
        bed.edge_switches[(0, l)] = switch
        bed.switches.append(switch)

    for sp in range(spines):
        switch = _new_switch(engine, "fab-s%d" % sp, costs, ecmp_seed)
        for l in range(leaves):
            switch.add_port(FabricNic(engine, "p%d" % l, spine_addr(sp, l)),
                            peer_addr=leaf_addr(l, hosts_per_leaf + sp))
        table = switch.add_table(MatchTable("l3", "dst_ip", kind="lpm"))
        for l in range(leaves):
            table.set(ip_aton("10.0.%d.0" % l), (Forward(l),), prefix_len=24)
        bed.core_switches[sp] = switch
        bed.switches.append(switch)

    for switch in bed.switches:
        bed.hosts.append(switch.host)
        bed.nics.extend(port.nic for port in switch.ports)

    for l in range(leaves):
        for s in range(hosts_per_leaf):
            host_index = bed.host_locator.index((0, l, s))
            _wire(bed, bed.nics[host_index], leaf_switches[l].ports[s].nic,
                  "host:l%ds%d" % (l, s),
                  propagation_us=HOST_LINK_PROPAGATION_US)
    for l in range(leaves):
        for sp in range(spines):
            _wire(bed, leaf_switches[l].ports[hosts_per_leaf + sp].nic,
                  bed.core_switches[sp].ports[l].nic,
                  "leaf-spine:l%ds%d" % (l, sp))
    return bed


def linear_chain(n_switches: int, os_name: str = "spin",
                 engine: Optional[Engine] = None, ecmp_seed: int = 1996,
                 deliver_mode: str = "interrupt",
                 costs: CostTable = ALPHA_21064) -> FabricBed:
    """Two hosts joined by a chain of ``n_switches`` single-table hops."""
    if n_switches < 1:
        raise ValueError("a chain needs at least one switch")
    engine = engine or Engine()
    bed = FabricBed(engine, os_name, "fabric")
    ip_a, ip_b = ip_aton("10.0.0.2"), ip_aton("10.0.1.2")

    def chain_addr(i: int, port: int) -> str:
        return "fx-c%d.%d" % (i, port)

    _add_edge_host(bed, os_name, "fab-h-a", "fh-a", ip_a,
                   {ip_b: chain_addr(0, 0)}, deliver_mode, costs)
    bed.host_locator.append((0, 0, 0))
    _add_edge_host(bed, os_name, "fab-h-b", "fh-b", ip_b,
                   {ip_a: chain_addr(n_switches - 1, 1)}, deliver_mode, costs)
    bed.host_locator.append((0, 1, 0))

    for i in range(n_switches):
        switch = _new_switch(engine, "fab-x%d" % i, costs, ecmp_seed)
        left_peer = "fh-a" if i == 0 else chain_addr(i - 1, 1)
        right_peer = ("fh-b" if i == n_switches - 1
                      else chain_addr(i + 1, 0))
        switch.add_port(FabricNic(engine, "p0", chain_addr(i, 0)),
                        peer_addr=left_peer)
        switch.add_port(FabricNic(engine, "p1", chain_addr(i, 1)),
                        peer_addr=right_peer)
        table = switch.add_table(MatchTable("l3", "dst_ip", kind="lpm"))
        table.set(ip_a, (Forward(0),), prefix_len=32)
        table.set(ip_b, (Forward(1),), prefix_len=32)
        bed.switches.append(switch)

    for switch in bed.switches:
        bed.hosts.append(switch.host)
        bed.nics.extend(port.nic for port in switch.ports)

    _wire(bed, bed.nics[0], bed.switches[0].ports[0].nic, "host:a",
          propagation_us=HOST_LINK_PROPAGATION_US)
    for i in range(n_switches - 1):
        _wire(bed, bed.switches[i].ports[1].nic,
              bed.switches[i + 1].ports[0].nic, "chain:%d-%d" % (i, i + 1))
    _wire(bed, bed.nics[1], bed.switches[-1].ports[1].nic, "host:b",
          propagation_us=HOST_LINK_PROPAGATION_US)
    return bed
