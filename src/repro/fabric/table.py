"""Match-action tables: the programmable half of the switch data plane.

A :class:`MatchTable` matches one parsed header field -- exactly, or by
longest prefix (the LPM core is the same :class:`ForwardingTable` the IP
layer routes with, so prefix semantics cannot diverge between hosts and
switches).  A hit yields a tuple of actions applied in order:

* :class:`Count` -- bump a named counter, keep going,
* :class:`Modify` -- rewrite a header field (checksums re-folded on
  egress), keep going,
* :class:`Forward` -- egress via one port, or ECMP over several; ends
  the pipeline,
* :class:`Drop` -- ends the pipeline.

Tables are control-plane state: installing or withdrawing rules charges
no simulated CPU and takes effect on the very next packet (handlers run
live under the dispatcher; the flow cache memoises guard verdicts, never
forwarding decisions).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..net.checksum import internet_checksum
from ..net.fwdtable import ForwardingTable
from ..net.headers import (
    IP_HEADER,
    IPPROTO_TCP,
    IPPROTO_UDP,
    pseudo_header_sum,
)

__all__ = ["Forward", "Drop", "Modify", "Count", "MatchTable",
           "PacketFields", "refold_checksums",
           "MATCH_FIELDS", "MODIFY_FIELDS"]

#: header fields a table may match on
MATCH_FIELDS = ("dst_ip", "src_ip", "proto", "src_port", "dst_port", "ttl")
#: header fields a Modify action may rewrite
MODIFY_FIELDS = ("ttl", "tos", "src_ip", "dst_ip")


class Forward:
    """Egress via ``ports[0]``, or ECMP across them when len > 1."""

    __slots__ = ("ports",)

    def __init__(self, *ports: int):
        if not ports:
            raise ValueError("Forward needs at least one egress port")
        self.ports: Tuple[int, ...] = tuple(ports)

    def __repr__(self) -> str:
        return "Forward%r" % (self.ports,)


class Drop:
    """Discard the packet (terminal)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Drop()"


class Modify:
    """Set header ``field`` to ``value``; checksums re-fold on egress."""

    __slots__ = ("field", "value")

    def __init__(self, field: str, value: int):
        if field not in MODIFY_FIELDS:
            raise ValueError("cannot modify %r (choose from %s)"
                             % (field, MODIFY_FIELDS))
        self.field = field
        self.value = value

    def __repr__(self) -> str:
        return "Modify(%r, %d)" % (self.field, self.value)


class Count:
    """Bump the switch-level counter ``name`` and continue."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return "Count(%r)" % self.name


class PacketFields:
    """Header fields of one raw-link IP frame, parsed once per packet."""

    __slots__ = ("ok", "proto", "src_ip", "dst_ip", "ttl", "tos",
                 "src_port", "dst_port", "header_len", "total_len")

    def __init__(self, data) -> None:
        self.ok = False
        self.proto = 0
        self.src_ip = 0
        self.dst_ip = 0
        self.ttl = 0
        self.tos = 0
        self.src_port = 0
        self.dst_port = 0
        self.header_len = 0
        self.total_len = len(data)
        if len(data) < IP_HEADER.size or (data[0] >> 4) != 4:
            return
        header_len = (data[0] & 0x0F) * 4
        if header_len < IP_HEADER.size or len(data) < header_len:
            return
        self.header_len = header_len
        self.tos = data[1]
        self.ttl = data[8]
        self.proto = data[9]
        self.src_ip = int.from_bytes(data[12:16], "big")
        self.dst_ip = int.from_bytes(data[16:20], "big")
        frag = int.from_bytes(data[6:8], "big")
        if self.proto in (IPPROTO_UDP, IPPROTO_TCP) and \
                (frag & 0x1FFF) == 0 and len(data) >= header_len + 4:
            self.src_port = int.from_bytes(data[header_len:header_len + 2],
                                           "big")
            self.dst_port = int.from_bytes(data[header_len + 2:header_len + 4],
                                           "big")
        self.ok = True

    def get(self, field: str) -> int:
        return getattr(self, field)


_FIELD_WRITERS = {
    # field -> fn(buf, header_len, value); returns True if l4 checksum
    # must be re-folded too (pseudo-header fields changed).
    "ttl": lambda buf, hlen, v: buf.__setitem__(8, v & 0xFF) or False,
    "tos": lambda buf, hlen, v: buf.__setitem__(1, v & 0xFF) or False,
    "src_ip": lambda buf, hlen, v:
        buf.__setitem__(slice(12, 16), int(v).to_bytes(4, "big")) or True,
    "dst_ip": lambda buf, hlen, v:
        buf.__setitem__(slice(16, 20), int(v).to_bytes(4, "big")) or True,
}


def apply_modify(buf: bytearray, fields: PacketFields, action: Modify) -> bool:
    """Write ``action`` into ``buf`` and re-parse ``fields`` views.

    Returns True when the L4 checksum needs re-folding (an address
    changed, so the pseudo-header changed).
    """
    l4 = _FIELD_WRITERS[action.field](buf, fields.header_len, action.value)
    setattr(fields, action.field,
            action.value & (0xFF if action.field in ("ttl", "tos")
                            else 0xFFFFFFFF))
    return l4


def refold_checksums(buf: bytearray, refold_l4: bool = False) -> None:
    """Recompute the IP header checksum (and optionally UDP/TCP) in place.

    ``buf`` holds a raw-link IP frame.  The IP checksum is always
    re-folded; ``refold_l4`` additionally recomputes the transport
    checksum over payload + pseudo-header (needed whenever an address
    was rewritten).  A UDP checksum of zero means "unchecked" and stays
    zero, per RFC 768.
    """
    header_len = (buf[0] & 0x0F) * 4
    buf[10:12] = b"\x00\x00"
    buf[10:12] = internet_checksum(buf[:header_len]).to_bytes(2, "big")
    if not refold_l4:
        return
    proto = buf[9]
    if proto not in (IPPROTO_UDP, IPPROTO_TCP):
        return
    frag = int.from_bytes(buf[6:8], "big")
    if frag & 0x1FFF:
        return
    src = int.from_bytes(buf[12:16], "big")
    dst = int.from_bytes(buf[16:20], "big")
    segment = memoryview(buf)[header_len:]
    cksum_off = 6 if proto == IPPROTO_UDP else 16
    if len(segment) < cksum_off + 2:
        return
    if proto == IPPROTO_UDP and segment[cksum_off:cksum_off + 2] == b"\x00\x00":
        return  # sender opted out of UDP checksums
    segment[cksum_off:cksum_off + 2] = b"\x00\x00"
    folded = internet_checksum(
        segment, initial=pseudo_header_sum(src, dst, proto, len(segment)))
    if proto == IPPROTO_UDP and folded == 0:
        folded = 0xFFFF  # RFC 768: transmitted as all-ones
    segment[cksum_off:cksum_off + 2] = folded.to_bytes(2, "big")


class MatchTable:
    """One match-action stage: ``field`` matched exactly or by prefix."""

    def __init__(self, name: str, field: str, kind: str = "exact",
                 default: Optional[Tuple] = None):
        if field not in MATCH_FIELDS:
            raise ValueError("cannot match %r (choose from %s)"
                             % (field, MATCH_FIELDS))
        if kind not in ("exact", "lpm"):
            raise ValueError("kind must be 'exact' or 'lpm'")
        if kind == "lpm" and field not in ("dst_ip", "src_ip"):
            raise ValueError("LPM tables match IP address fields")
        self.name = name
        self.field = field
        self.kind = kind
        #: actions applied on a miss; None falls through to the next table
        self.default: Optional[Tuple] = (tuple(default)
                                         if default is not None else None)
        self._exact: Dict[int, Tuple] = {}
        self._lpm = ForwardingTable()
        self.hits = 0
        self.misses = 0
        self.updates = 0

    def __len__(self) -> int:
        return len(self._exact) if self.kind == "exact" else len(self._lpm)

    def set(self, key: int, actions: Tuple, prefix_len: Optional[int] = None
            ) -> None:
        """Install ``key -> actions`` (``prefix_len`` required for LPM)."""
        actions = tuple(actions)
        if not actions:
            raise ValueError("an entry needs at least one action")
        self.updates += 1
        if self.kind == "exact":
            if prefix_len is not None:
                raise ValueError("prefix_len is an LPM concept")
            self._exact[key] = actions
        else:
            if prefix_len is None:
                raise ValueError("LPM entries need a prefix_len")
            # Replace-on-reinstall: a withdrawn prefix must not shadow.
            self._lpm.remove(key, prefix_len)
            self._lpm.add(key, prefix_len, actions)

    def remove(self, key: int, prefix_len: Optional[int] = None) -> bool:
        self.updates += 1
        if self.kind == "exact":
            return self._exact.pop(key, None) is not None
        if prefix_len is None:
            raise ValueError("LPM removal needs a prefix_len")
        return self._lpm.remove(key, prefix_len)

    def lookup(self, fields: PacketFields) -> Optional[Tuple]:
        """Actions for this packet: an entry's, the default's, or None."""
        value = fields.get(self.field)
        if self.kind == "exact":
            actions = self._exact.get(value)
        else:
            actions = self._lpm.lookup(value)
        if actions is not None:
            self.hits += 1
            return actions
        self.misses += 1
        return self.default

    def register_metrics(self, registry) -> None:
        registry.source("fabric.table.hits", lambda: self.hits)
        registry.source("fabric.table.misses", lambda: self.misses)
        registry.source("fabric.table.updates", lambda: self.updates)
        registry.source("fabric.table.entries", lambda: len(self))
