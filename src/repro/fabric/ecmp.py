"""Deterministic seeded ECMP: hash the canonical 5-tuple, pick a port.

Python's builtin ``hash`` is randomized per process, so it can never
appear in a simulation result.  ECMP choices here come from BLAKE2b
keyed by the fabric's seed over the packed 5-tuple -- the same
(seed, 5-tuple) always selects the same member, across runs, processes
and partition executors.
"""

from __future__ import annotations

import hashlib
import struct

__all__ = ["ecmp_select"]

_KEY_STRUCT = struct.Struct(">IIIHH")


def ecmp_select(seed: int, proto: int, src_ip: int, dst_ip: int,
                src_port: int, dst_port: int, n: int) -> int:
    """Index in ``range(n)`` for this flow, stable in (seed, 5-tuple)."""
    if n <= 0:
        raise ValueError("ECMP group must have at least one member")
    if n == 1:
        return 0
    packed = _KEY_STRUCT.pack(proto & 0xFFFFFFFF, src_ip & 0xFFFFFFFF,
                              dst_ip & 0xFFFFFFFF, src_port & 0xFFFF,
                              dst_port & 0xFFFF)
    digest = hashlib.blake2b(packed, digest_size=8,
                             key=(seed & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big")
                             ).digest()
    return int.from_bytes(digest, "big") % n
