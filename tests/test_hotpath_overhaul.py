"""Tests for the hot-path wall-clock overhaul.

Covers the surfaces the overhaul added or rewrote:

* the word-wise Internet checksum against the per-byte reference oracle
  (RFC 1071 vectors, the small/chunked path boundary, pseudo-header
  folding via ``initial=``), including a no-copy regression bound,
* whole-record ``Layout.pack_into``/``unpack_from`` and the scalar
  getter/putter accessors,
* ``raw_storage`` unwrapping,
* the engine's zero-delay fast path and pooled timeouts,
* the dispatcher's cached handler snapshot,
* ``try_charge`` uncontexted-charge accounting.

Simulated-time outputs must be unaffected by any of this; the
byte-identical guard lives in ``benchmarks/test_wallclock.py``.
"""

import tracemalloc

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import VIEW, Layout, UINT16, UINT16_LE
from repro.lang.readonly import ReadOnlyBuffer
from repro.lang.view import raw_storage
from repro.net.checksum import (
    internet_checksum,
    internet_checksum_reference,
)
from repro.net.headers import (
    ETHERNET_HEADER,
    IP_HEADER,
    UDP_HEADER,
    pseudo_header,
    pseudo_header_sum,
)
from repro.spin import DispatchError


# ---------------------------------------------------------------------------
# checksum: word-wise vs the per-byte oracle
# ---------------------------------------------------------------------------

class TestChecksumAgainstReference:
    # Sizes straddling the single-int small path (<= 512 bytes) and the
    # chunked path (2048-byte struct chunks), with odd-length variants.
    BOUNDARY_SIZES = [0, 1, 2, 3, 511, 512, 513, 514,
                      2047, 2048, 2049, 4096, 4099]

    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_boundary_sizes_match_reference(self, size):
        data = bytes((7 * i + 3) & 0xFF for i in range(size))
        assert internet_checksum(data) == internet_checksum_reference(data)

    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_all_ones_match_reference(self, size):
        data = b"\xff" * size
        assert internet_checksum(data) == internet_checksum_reference(data)

    def test_rfc1071_worked_example(self):
        # The example sum from RFC 1071 section 3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_initial_folds_like_prepended_bytes(self):
        # Folding the pseudo-header arithmetically (the send/receive paths
        # since the overhaul) must equal summing its bytes (the old code).
        payload = bytes(range(97))  # odd length on purpose
        src, dst, proto, length = 0x0A000001, 0x0A000002, 17, len(payload)
        arithmetic = internet_checksum(
            payload, initial=pseudo_header_sum(src, dst, proto, length))
        concatenated = internet_checksum(
            pseudo_header(src, dst, proto, length) + payload)
        assert arithmetic == concatenated

    @given(st.binary(min_size=0, max_size=5000),
           st.integers(min_value=0, max_value=0x3FFFF))
    @settings(max_examples=120)
    def test_hypothesis_cross_check(self, data, initial):
        assert (internet_checksum(data, initial)
                == internet_checksum_reference(data, initial))

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF),
           st.integers(min_value=0, max_value=0xFFFFFFFF),
           st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=60)
    def test_pseudo_header_sum_equals_byte_sum(self, src, dst, proto, length):
        assert (internet_checksum(b"", initial=pseudo_header_sum(
                    src, dst, proto, length))
                == internet_checksum(pseudo_header(src, dst, proto, length)))


class TestChecksumZeroCopy:
    def test_large_buffer_does_not_copy(self):
        # The chunked path works over a memoryview in constant extra
        # space; a regression to slicing/joining would show up as an
        # allocation peak proportional to the input.
        data = bytes(1024 * 1024)
        expected = internet_checksum_reference(data[:4096])  # warm caches
        assert expected == internet_checksum(data[:4096])
        tracemalloc.start()
        internet_checksum(data)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < len(data) // 4, (
            "checksum of a 1 MiB buffer allocated %d bytes peak" % peak)

    def test_memoryview_input(self):
        storage = bytearray(b"\x12\x34" * 2000)
        view = memoryview(storage)
        assert (internet_checksum(view)
                == internet_checksum_reference(bytes(storage)))


# ---------------------------------------------------------------------------
# layout: whole-record struct + scalar accessors
# ---------------------------------------------------------------------------

class TestWholeRecordStruct:
    def test_udp_header_roundtrip(self):
        buf = bytearray(UDP_HEADER.size)
        UDP_HEADER.pack_into(buf, 0, 7001, 7002, 36, 0xBEEF)
        assert UDP_HEADER.unpack_from(buf, 0) == (7001, 7002, 36, 0xBEEF)
        view = VIEW(buf, UDP_HEADER)
        assert (view.src_port, view.dst_port) == (7001, 7002)
        assert (view.length, view.checksum) == (36, 0xBEEF)

    def test_byte_array_fields_pack_as_bytes(self):
        buf = bytearray(ETHERNET_HEADER.size)
        ETHERNET_HEADER.pack_into(buf, 0, b"\x01" * 6, b"\x02" * 6, 0x0800)
        dst, src, ethertype = ETHERNET_HEADER.unpack_from(buf, 0)
        assert (dst, src, ethertype) == (b"\x01" * 6, b"\x02" * 6, 0x0800)

    def test_unpack_at_offset(self):
        buf = bytearray(4) + bytes(IP_HEADER.size)
        fields = IP_HEADER.unpack_from(buf, 4)
        assert len(fields) == len(IP_HEADER.fields)

    def test_mixed_byte_orders_have_no_whole_struct(self):
        mixed = Layout("Mixed.T", [("a", UINT16), ("b", UINT16_LE)])
        assert not hasattr(mixed, "pack_into")
        assert not hasattr(mixed, "unpack_from")

    def test_scalar_putter_matches_view_write(self):
        put, offset = UDP_HEADER.scalar_putter("checksum")
        buf = bytearray(UDP_HEADER.size)
        put(buf, offset, 0xCAFE)
        assert VIEW(buf, UDP_HEADER).checksum == 0xCAFE

    def test_scalar_getter_matches_view_read(self):
        get, offset = ETHERNET_HEADER.scalar_getter("type")
        buf = bytearray(ETHERNET_HEADER.size)
        VIEW(buf, ETHERNET_HEADER).type = 0x0806
        assert get(buf, offset)[0] == 0x0806

    def test_scalar_getter_unknown_field(self):
        with pytest.raises(KeyError):
            UDP_HEADER.scalar_getter("nope")


class TestRawStorage:
    def test_plain_buffers_pass_through(self):
        for buf in (b"abc", bytearray(b"abc"), memoryview(b"abc")):
            assert raw_storage(buf) is buf

    def test_readonly_buffer_unwraps_without_copy(self):
        storage = b"\x00" * 64
        wrapped = ReadOnlyBuffer(storage)
        assert raw_storage(wrapped) is storage

    def test_unpack_through_readonly(self):
        buf = bytearray(UDP_HEADER.size)
        UDP_HEADER.pack_into(buf, 0, 1, 2, 8, 0)
        assert (UDP_HEADER.unpack_from(raw_storage(ReadOnlyBuffer(buf)), 0)
                == (1, 2, 8, 0))


# ---------------------------------------------------------------------------
# engine: zero-delay fast path and pooled timeouts
# ---------------------------------------------------------------------------

class TestPooledTimeouts:
    def test_delay_advances_simulated_time(self, engine):
        marks = []

        def proc():
            yield engine.pooled_timeout(5.0)
            marks.append(engine.now)
            yield engine.pooled_timeout(0.0)
            marks.append(engine.now)

        engine.process(proc())
        engine.run()
        assert marks == [5.0, 5.0]

    def test_zero_delay_events_fire_fifo(self, engine):
        order = []

        def proc(tag):
            yield engine.pooled_timeout(0.0)
            order.append(tag)

        for tag in range(5):
            engine.process(proc(tag))
        engine.run()
        assert order == sorted(order)

    def test_pool_recycles_and_stays_bounded(self, engine):
        def proc():
            for _ in range(5000):
                yield engine.pooled_timeout(0.0)

        engine.process(proc())
        engine.run()
        assert 1 <= len(engine._pool) <= engine._POOL_LIMIT

    def test_zero_delay_interleaves_with_heap_in_time_order(self, engine):
        order = []

        def late():
            yield engine.timeout(1.0)
            order.append("late")

        def immediate():
            yield engine.pooled_timeout(0.0)
            order.append("immediate")

        engine.process(late())
        engine.process(immediate())
        engine.run()
        assert order == ["immediate", "late"]


# ---------------------------------------------------------------------------
# dispatcher: cached handler snapshot
# ---------------------------------------------------------------------------

class TestDispatcherSnapshot:
    def test_install_during_raise_deferred_to_next_raise(self, kernel):
        dispatcher = kernel.dispatcher
        event = dispatcher.declare("Snap")
        seen = []

        def second(tag):
            seen.append(("second", tag))

        def first(tag):
            seen.append(("first", tag))
            if tag == 0:
                dispatcher.install(event, second)

        dispatcher.install(event, first)
        marker = kernel.cpu.begin()
        assert dispatcher.raise_event(event, 0) == 1
        assert dispatcher.raise_event(event, 1) == 2
        kernel.cpu.end(marker)
        assert seen == [("first", 0), ("first", 1), ("second", 1)]

    def test_uninstall_mid_raise_skips_handler(self, kernel):
        dispatcher = kernel.dispatcher
        event = dispatcher.declare("Snap2")
        seen = []

        handles = {}

        def first(tag):
            seen.append("first")
            handles["second"].uninstall()

        def second(tag):
            seen.append("second")

        dispatcher.install(event, first)
        handles["second"] = dispatcher.install(event, second)
        marker = kernel.cpu.begin()
        matched = dispatcher.raise_event(event, 0)
        kernel.cpu.end(marker)
        assert matched == 1
        assert seen == ["first"]

    def test_raise_requires_event_capability(self, kernel):
        with pytest.raises(DispatchError):
            kernel.dispatcher.raise_event("not-an-event")


# ---------------------------------------------------------------------------
# cpu: uncontexted control-plane charges
# ---------------------------------------------------------------------------

class TestTryCharge:
    def test_uninstall_outside_context_counts_uncontexted(self, kernel):
        event = kernel.dispatcher.declare("X")
        handle = kernel.dispatcher.install(event, lambda: None)
        before = kernel.cpu.uncontexted_charges
        before_us = kernel.cpu.uncontexted_charge_us
        handle.uninstall()
        assert kernel.cpu.uncontexted_charges == before + 1
        assert (kernel.cpu.uncontexted_charge_us
                == pytest.approx(before_us + kernel.costs.handler_uninstall))

    def test_uninstall_inside_context_charges_accumulator(self, kernel):
        event = kernel.dispatcher.declare("Y")
        handle = kernel.dispatcher.install(event, lambda: None)
        marker = kernel.cpu.begin()
        handle.uninstall()
        charged = kernel.cpu.end(marker)
        assert charged == pytest.approx(kernel.costs.handler_uninstall)
