"""Shared fixtures for the test suite."""

import pytest

from repro.bench.testbed import build_testbed
from repro.sim import Engine
from repro.spin import SpinKernel


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def kernel(engine):
    return SpinKernel(engine, "test-kernel")


@pytest.fixture
def spin_pair():
    """Two SPIN hosts with Plexus stacks on a private Ethernet."""
    return build_testbed("spin", "ethernet")


@pytest.fixture
def unix_pair():
    """Two monolithic hosts with socket layers on a private Ethernet."""
    return build_testbed("unix", "ethernet")


def run_kernel(bed, host_index, fn):
    """Run plain kernel code on one host of a testbed and drain events."""
    result = bed.engine.run_process(
        bed.hosts[host_index].kernel_path(fn), name="test-kpath")
    bed.engine.run()
    return result
