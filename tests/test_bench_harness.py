"""Tests for the benchmark harness itself: stats, tables, charts, testbeds."""

import pytest

from repro.bench.figures import bar_chart, curve_chart, render_figure5
from repro.bench.report import format_table
from repro.bench.stats import summarize
from repro.bench.testbed import build_raw_pair, build_testbed
from repro.hw import ForeAtm, LanceEthernet, T3Nic
from repro.hw.alpha import ALPHA_21064


class TestStats:
    def test_summary_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.n == 3
        assert s.stdev == pytest.approx(1.0)

    def test_single_sample(self):
        s = summarize([5.0])
        assert s.stdev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestTables:
    def test_format_alignment_and_values(self):
        rows = [{"a": 1.2345, "b": "x"}, {"a": 10.0, "b": None}]
        text = format_table(rows, ["a", "b"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.2" in text and "10.0" in text
        assert "-" in lines[-1]  # None rendered as '-'

    def test_bar_chart_scales_to_peak(self):
        rows = [{"label": "small", "v": 10.0}, {"label": "big", "v": 100.0}]
        text = bar_chart(rows, "label", "v", width=20)
        small_line, big_line = text.splitlines()
        assert big_line.count("#") == 20
        assert small_line.count("#") == 2

    def test_curve_chart_renders_legend(self):
        text = curve_chart({"A": [1, 2, 3], "B": [3, 2, 1]}, [10, 20, 30])
        assert "* = A" in text
        assert "o = B" in text

    def test_render_figure5_sections(self):
        rows = [
            {"device": "ethernet", "system": "raw", "rtt_us": 100.0,
             "paper_us": None},
            {"device": "ethernet", "system": "plexus", "rtt_us": 200.0,
             "paper_us": None},
        ]
        text = render_figure5(rows)
        assert "ethernet:" in text
        assert "plexus" in text


class TestTestbedConstruction:
    @pytest.mark.parametrize("os_name", ["spin", "unix"])
    @pytest.mark.parametrize("device", ["ethernet", "atm", "t3"])
    def test_all_combinations_build(self, os_name, device):
        bed = build_testbed(os_name, device)
        assert len(bed.hosts) == 2
        assert bed.hosts[0].name.startswith(os_name)

    def test_device_nic_types(self):
        assert isinstance(build_testbed("spin", "ethernet").nics[0],
                          LanceEthernet)
        assert isinstance(build_testbed("spin", "atm").nics[0], ForeAtm)
        assert isinstance(build_testbed("spin", "t3").nics[0], T3Nic)

    def test_t3_exactly_two_hosts(self):
        with pytest.raises(ValueError):
            build_testbed("spin", "t3", n_hosts=3)

    def test_unknown_os_and_device(self):
        with pytest.raises(ValueError):
            build_testbed("mach", "ethernet")
        with pytest.raises(ValueError):
            build_testbed("spin", "token-ring")

    def test_warm_arp_prepopulates(self):
        warm = build_testbed("spin", "ethernet", warm_arp=True)
        assert warm.stacks[0].arp.cache
        cold = build_testbed("spin", "ethernet", warm_arp=False)
        assert not cold.stacks[0].arp.cache

    def test_custom_cost_table(self):
        slower = ALPHA_21064.scaled(3.0)
        bed = build_testbed("spin", "ethernet", costs=slower)
        assert bed.hosts[0].costs.context_switch == \
            ALPHA_21064.context_switch * 3

    def test_ips_are_distinct(self):
        bed = build_testbed("spin", "ethernet", n_hosts=4)
        assert len(set(bed.ips)) == 4

    def test_raw_pair_devices(self):
        for device in ("ethernet", "atm", "t3"):
            engine, initiator, responder, nic_a, nic_b = build_raw_pair(device)
            assert initiator.echo is False
            assert responder.echo is True

    def test_fast_driver_profiles_cheaper(self):
        standard = build_testbed("spin", "ethernet").nics[0]
        fast = build_testbed("spin", "ethernet", fast_driver=True).nics[0]
        assert fast.profile.fixed_rx < standard.profile.fixed_rx
