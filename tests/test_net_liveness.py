"""Tests for liveness machinery: TCP keepalive and ARP cache aging."""

import pytest

from repro.bench.testbed import build_testbed
from repro.core import Credential
from repro.lang import ephemeral

from nethelpers import make_pair

PORT = 9000


@ephemeral
def _noop(m, off, src_ip, src_port, dst_ip, dst_port):
    pass


def establish(engine, a, b):
    accepted = []
    b.tcp.listen(PORT, accepted.append)
    box = {}
    a.run_kernel(lambda: box.setdefault("t", a.tcp.connect(b.my_ip, PORT)))
    engine.run()
    return box["t"], accepted[0]


class TestKeepalive:
    def test_idle_connection_probed_and_kept(self):
        """A live peer answers the probes; the connection survives."""
        engine, wire, a, b = make_pair()
        client, server = establish(engine, a, b)
        a.run_kernel(lambda: client.enable_keepalive(50_000.0))
        segments_before = client.segments_sent
        engine.run(until=engine.now + 400_000.0)
        from repro.net.tcp import TcpState
        assert client.state == TcpState.ESTABLISHED
        assert client.segments_sent > segments_before  # probes went out
        assert client._keepalive_misses <= 1

    def test_dead_peer_detected_and_reset(self):
        """A vanished peer stops answering; keepalive resets the TCB."""
        engine, wire, a, b = make_pair()
        resets = []
        client, server = establish(engine, a, b)
        client.on_reset = lambda: resets.append(True)
        a.run_kernel(lambda: client.enable_keepalive(50_000.0))
        wire.drop_filter = lambda data, hop: True  # the peer "crashes"
        engine.run(until=engine.now + 500_000.0)
        from repro.net.tcp import TcpState
        assert client.state == TcpState.CLOSED
        assert resets == [True]
        assert not a.tcp.connections

    def test_traffic_suppresses_probes(self):
        """Activity resets the idle clock; no probes during a transfer."""
        engine, wire, a, b = make_pair()
        got = []
        client, server = establish(engine, a, b)
        server.on_data = got.append
        a.run_kernel(lambda: client.enable_keepalive(80_000.0))
        for _ in range(6):
            a.run_kernel(lambda: client.send(b"keep busy"))
            engine.run(until=engine.now + 40_000.0)
        assert client._keepalive_misses == 0
        assert b"".join(got) == b"keep busy" * 6
        engine.run(until=engine.now + 600_000.0)

    def test_invalid_interval_rejected(self):
        engine, wire, a, b = make_pair()
        client, server = establish(engine, a, b)
        with pytest.raises(ValueError):
            client.enable_keepalive(0)


class TestArpAging:
    def test_expired_entry_triggers_new_request(self):
        bed = build_testbed("spin", "ethernet", warm_arp=False)
        engine = bed.engine
        arp = bed.stacks[0].arp
        arp.entry_lifetime_us = 100_000.0  # 100 ms for the test
        seen = []
        bed.stacks[1].udp_manager.bind(Credential("s"), 7000,
                                       _make_counter(seen))
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)

        def send():
            yield from bed.hosts[0].kernel_path(
                lambda: sender.send(b"one", bed.ip(1), 7000))
        engine.run_process(send())
        engine.run()
        assert arp.requests_sent == 1
        # Let the entry rot, then send again.
        engine.run(until=engine.now + 200_000.0)
        engine.run_process(send())
        engine.run()
        assert arp.expirations == 1
        assert arp.requests_sent == 2
        assert len(seen) == 2  # both datagrams arrived regardless

    def test_fresh_entry_not_expired(self):
        bed = build_testbed("spin", "ethernet", warm_arp=False)
        engine = bed.engine
        arp = bed.stacks[0].arp
        bed.stacks[1].udp_manager.bind(Credential("s"), 7000, _noop)
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)

        def send():
            yield from bed.hosts[0].kernel_path(
                lambda: sender.send(b"x", bed.ip(1), 7000))
        for _ in range(3):
            engine.run_process(send())
            engine.run()
        assert arp.requests_sent == 1
        assert arp.expirations == 0

    def test_refresh_on_relearn(self):
        """Hearing from the peer refreshes its entry's clock."""
        bed = build_testbed("spin", "ethernet", warm_arp=False)
        engine = bed.engine
        arp_a = bed.stacks[0].arp
        arp_a.entry_lifetime_us = 150_000.0
        echo_ep = None

        @ephemeral
        def echo(m, off, src_ip, src_port, dst_ip, dst_port):
            echo_ep.send(b"back", src_ip, src_port)
        echo_ep = bed.stacks[1].udp_manager.bind(Credential("s"), 7000, echo)
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)

        def send():
            yield from bed.hosts[0].kernel_path(
                lambda: sender.send(b"ping", bed.ip(1), 7000))
        # Traffic every 100 ms: each reply does NOT refresh A's entry for
        # B (replies are unicast IP, not ARP), so expiry still happens at
        # 150 ms idle -- but sends at 100 ms spacing keep hitting a live
        # entry until it ages past the lifetime.
        engine.run_process(send())
        engine.run()
        engine.run(until=engine.now + 100_000.0)
        engine.run_process(send())
        engine.run()
        assert arp_a.requests_sent == 1  # entry still fresh at 100 ms


def _make_counter(seen):
    @ephemeral
    def handler(m, off, src_ip, src_port, dst_ip, dst_port):
        seen.append(dst_port)
    return handler
