"""Tests for Berkeley mbufs."""

import pytest

from repro.lang import ReadOnlyBuffer, ReadOnlyViolation
from repro.spin import MCLBYTES, MLEN, Mbuf, MbufError
from repro.spin.kernel import SpinKernel


class TestConstruction:
    def test_small_get(self):
        m = Mbuf.get(leading_space=16)
        assert m.len == 0
        assert m.off == 16

    def test_get_cluster(self):
        m = Mbuf.get_cluster()
        assert len(m._storage) == MCLBYTES

    def test_leading_space_bounds(self):
        with pytest.raises(MbufError):
            Mbuf.get(leading_space=MLEN)

    def test_from_bytes_small(self):
        m = Mbuf.from_bytes(b"hello", leading_space=8)
        assert m.to_bytes() == b"hello"
        assert m.pkthdr.length == 5

    def test_from_bytes_spans_clusters(self):
        data = bytes(range(256)) * 20  # 5120 bytes > MCLBYTES
        m = Mbuf.from_bytes(data)
        assert m.to_bytes() == data
        assert sum(1 for _ in m.chain()) >= 3
        assert m.pkthdr.length == len(data)

    def test_from_bytes_records_rcvif(self):
        m = Mbuf.from_bytes(b"x", rcvif="nic0")
        assert m.pkthdr.rcvif == "nic0"

    def test_length_sums_chain(self):
        m = Mbuf.from_bytes(bytes(5000))
        assert m.length() == 5000


class TestPrepend:
    def test_prepend_uses_headroom(self):
        m = Mbuf.from_bytes(b"payload", leading_space=32)
        chain_before = sum(1 for _ in m.chain())
        m2 = m.prepend(b"HDR")
        assert m2 is m  # in place
        assert sum(1 for _ in m2.chain()) == chain_before
        assert m2.to_bytes() == b"HDRpayload"

    def test_prepend_without_headroom_allocates(self):
        m = Mbuf.from_bytes(b"payload", leading_space=0)
        m2 = m.prepend(b"HDR")
        assert m2 is not m
        assert m2.to_bytes() == b"HDRpayload"
        assert m2.pkthdr is not None and m2.pkthdr.length == 10
        assert m.pkthdr is None  # header moved to the new head

    def test_stacked_prepends_model_protocol_stack(self):
        m = Mbuf.from_bytes(b"data", leading_space=64)
        m = m.prepend(b"UDP8----")
        m = m.prepend(b"IP-HEADER-IP-HEADER-")
        m = m.prepend(b"ETHERNET-H31410")
        assert m.to_bytes().endswith(b"data")
        assert m.pkthdr.length == 4 + 8 + 20 + 15


class TestAdjAndPullup:
    def test_adj_front(self):
        m = Mbuf.from_bytes(b"HEADERpayload")
        m.adj(6)
        assert m.to_bytes() == b"payload"
        assert m.pkthdr.length == 7

    def test_adj_back(self):
        m = Mbuf.from_bytes(b"payloadCRC4")
        m.adj(-4)
        assert m.to_bytes() == b"payload"

    def test_adj_across_chain(self):
        m = Mbuf.from_bytes(bytes(3000))
        m.adj(2500)
        assert m.length() == 500

    def test_adj_too_much_rejected(self):
        m = Mbuf.from_bytes(b"abc")
        with pytest.raises(MbufError):
            m.adj(10)

    def test_pullup_noop_when_contiguous(self):
        m = Mbuf.from_bytes(b"0123456789")
        assert m.pullup(5) is m

    def test_pullup_linearizes(self):
        data = bytes(range(256)) * 12  # spans clusters
        m = Mbuf.from_bytes(data)
        assert m.len < 2000  # head alone does not cover the request
        m2 = m.pullup(2000)
        assert m2.len >= 2000
        assert m2.to_bytes() == data

    def test_pullup_beyond_cluster_rejected(self):
        m = Mbuf.from_bytes(bytes(5000))
        with pytest.raises(MbufError, match="cluster"):
            m.pullup(3000)

    def test_pullup_beyond_length_rejected(self):
        m = Mbuf.from_bytes(b"short")
        with pytest.raises(MbufError):
            m.pullup(100)


class TestAppend:
    def test_append_in_place(self):
        m = Mbuf.from_bytes(b"abc", leading_space=0)
        m.append_bytes(b"def")
        assert m.to_bytes() == b"abcdef"
        assert m.pkthdr.length == 6

    def test_append_grows_chain(self):
        m = Mbuf.from_bytes(bytes(MCLBYTES - 10))
        m.append_bytes(bytes(100))
        assert m.length() == MCLBYTES + 90


class TestReadOnly:
    def test_freeze_marks_whole_chain(self):
        m = Mbuf.from_bytes(bytes(5000))
        m.freeze()
        assert all(link.frozen for link in m.chain())

    def test_frozen_data_is_readonly_buffer(self):
        m = Mbuf.from_bytes(b"abc").freeze()
        assert isinstance(m.data, ReadOnlyBuffer)
        with pytest.raises(ReadOnlyViolation):
            m.data[0] = 1

    @pytest.mark.parametrize("mutation", [
        lambda m: m.prepend(b"x"),
        lambda m: m.adj(1),
        lambda m: m.pullup(2),
        lambda m: m.append_bytes(b"x"),
        lambda m: m.writable_data(),
    ])
    def test_frozen_mutations_rejected(self, mutation):
        m = Mbuf.from_bytes(b"abcdef").freeze()
        with pytest.raises(ReadOnlyViolation):
            mutation(m)

    def test_copy_packet_of_frozen_is_writable(self):
        m = Mbuf.from_bytes(b"abc").freeze()
        clone = m.copy_packet()
        clone.writable_data()[0] = ord("X")
        assert clone.to_bytes() == b"Xbc"
        assert m.to_bytes() == b"abc"

    def test_to_bytes_works_frozen(self):
        m = Mbuf.from_bytes(b"abc").freeze()
        assert m.to_bytes() == b"abc"


class TestSharing:
    def test_share_is_zero_copy_and_frozen(self):
        m = Mbuf.from_bytes(bytes(3000))
        twin = m.share()
        assert twin.frozen
        assert twin.to_bytes() == m.to_bytes()

    def test_share_bumps_cluster_refs(self):
        m = Mbuf.from_bytes(bytes(3000))
        clusters = [link._cluster for link in m.chain() if link._cluster]
        before = [c.refs for c in clusters]
        twin = m.share()
        assert [c.refs for c in clusters] == [r + 1 for r in before]
        twin.free()
        assert [c.refs for c in clusters] == before

    def test_share_sees_original_mutations(self):
        m = Mbuf.from_bytes(bytes(3000))
        twin = m.share()
        m.writable_data()[0] = 0xEE
        assert twin.to_bytes()[0] == 0xEE  # aliases, by design


class TestPool:
    def test_pool_charges_cpu(self, engine):
        kernel = SpinKernel(engine, "h")
        marker = kernel.cpu.begin()
        m = kernel.mbufs.from_bytes(bytes(5000))
        alloc_cost = kernel.cpu.end(marker)
        assert alloc_cost > 0
        assert kernel.mbufs.allocated == sum(1 for _ in m.chain())

    def test_pool_copy_charges_per_byte(self, engine):
        kernel = SpinKernel(engine, "h")
        marker = kernel.cpu.begin()
        m = kernel.mbufs.from_bytes(bytes(1000))
        base = kernel.cpu.end(marker)
        marker = kernel.cpu.begin()
        kernel.mbufs.copy_packet(m)
        copy_cost = kernel.cpu.end(marker)
        assert copy_cost > base  # the copy adds per-byte work

    def test_pool_free_accounts(self, engine):
        kernel = SpinKernel(engine, "h")
        marker = kernel.cpu.begin()
        m = kernel.mbufs.from_bytes(bytes(100))
        kernel.mbufs.free(m)
        kernel.cpu.end(marker)
        assert kernel.mbufs.freed == kernel.mbufs.allocated
