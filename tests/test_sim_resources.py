"""Tests for resources, stores, and signals."""

import pytest

from repro.sim import Resource, Signal, SimulationError, Store


class TestResource:
    def test_immediate_grant_when_free(self, engine):
        resource = Resource(engine)

        def proc():
            request = resource.request()
            yield request
            assert resource.in_use == 1
            request.release()
            return "ok"
        assert engine.run_process(proc()) == "ok"
        assert resource.in_use == 0

    def test_capacity_must_be_positive(self, engine):
        with pytest.raises(ValueError):
            Resource(engine, capacity=0)

    def test_fifo_within_priority(self, engine):
        resource = Resource(engine)
        order = []

        def holder():
            request = resource.request()
            yield request
            yield engine.timeout(10.0)
            request.release()

        def waiter(tag):
            request = resource.request()
            yield request
            order.append((tag, engine.now))
            request.release()
        engine.process(holder())
        engine.process(waiter("first"))
        engine.process(waiter("second"))
        engine.run()
        assert [tag for tag, _t in order] == ["first", "second"]

    def test_priority_preempts_queue_order(self, engine):
        resource = Resource(engine)
        order = []

        def holder():
            request = resource.request()
            yield request
            yield engine.timeout(10.0)
            request.release()

        def waiter(tag, priority):
            request = resource.request(priority)
            yield request
            order.append(tag)
            request.release()
        engine.process(holder())
        engine.process(waiter("low", 5))
        engine.process(waiter("high", 0))
        engine.run()
        assert order == ["high", "low"]

    def test_capacity_two_runs_two_concurrently(self, engine):
        resource = Resource(engine, capacity=2)
        finish_times = []

        def worker():
            request = resource.request()
            yield request
            yield engine.timeout(10.0)
            request.release()
            finish_times.append(engine.now)
        for _ in range(4):
            engine.process(worker())
        engine.run()
        assert finish_times == [10.0, 10.0, 20.0, 20.0]

    def test_double_release_rejected(self, engine):
        resource = Resource(engine)

        def proc():
            request = resource.request()
            yield request
            request.release()
            request.release()
        with pytest.raises(SimulationError):
            engine.run_process(proc())

    def test_cancel_before_grant(self, engine):
        resource = Resource(engine)

        def holder():
            request = resource.request()
            yield request
            yield engine.timeout(10.0)
            request.release()
        engine.process(holder())
        cancelled = resource.request()
        cancelled.release()  # cancel while queued

        def late():
            request = resource.request()
            yield request
            request.release()
            return engine.now
        # The cancelled request must not consume the grant.
        assert engine.run_process(late()) == 10.0

    def test_queue_length_excludes_cancelled(self, engine):
        resource = Resource(engine)

        def holder():
            request = resource.request()
            yield request
            yield engine.timeout(5.0)
            request.release()
        engine.process(holder())
        engine.run(until=1.0)
        queued = resource.request()
        assert resource.queue_length == 1
        queued.release()
        assert resource.queue_length == 0


class TestStore:
    def test_put_then_get(self, engine):
        store = Store(engine)
        store.put("item")

        def proc():
            value = yield store.get()
            return value
        assert engine.run_process(proc()) == "item"

    def test_get_blocks_until_put(self, engine):
        store = Store(engine)

        def consumer():
            value = yield store.get()
            return value, engine.now

        def producer():
            yield engine.timeout(30.0)
            store.put("late")
        engine.process(producer())
        assert engine.run_process(consumer()) == ("late", 30.0)

    def test_fifo_ordering(self, engine):
        store = Store(engine)
        for i in range(3):
            store.put(i)

        def proc():
            out = []
            for _ in range(3):
                out.append((yield store.get()))
            return out
        assert engine.run_process(proc()) == [0, 1, 2]

    def test_bounded_store_drops(self, engine):
        store = Store(engine, capacity=2)
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)
        assert store.drops == 1

    def test_put_raises_when_full(self, engine):
        store = Store(engine, capacity=1)
        store.put(1)
        with pytest.raises(OverflowError):
            store.put(2)

    def test_put_wait_blocks_for_space(self, engine):
        store = Store(engine, capacity=1)
        store.put("a")

        def producer():
            yield store.put_wait("b")
            return engine.now

        def consumer():
            yield engine.timeout(20.0)
            yield store.get()
        engine.process(consumer())
        assert engine.run_process(producer()) == 20.0

    def test_try_get(self, engine):
        store = Store(engine)
        ok, value = store.try_get()
        assert not ok and value is None
        store.put("x")
        ok, value = store.try_get()
        assert ok and value == "x"

    def test_invalid_capacity(self, engine):
        with pytest.raises(ValueError):
            Store(engine, capacity=0)

    def test_getter_queue_served_in_order(self, engine):
        store = Store(engine)
        results = []

        def consumer(tag):
            value = yield store.get()
            results.append((tag, value))
        engine.process(consumer("a"))
        engine.process(consumer("b"))

        def producer():
            yield engine.timeout(1.0)
            store.put(1)
            store.put(2)
        engine.run_process(producer())
        engine.run()
        assert results == [("a", 1), ("b", 2)]


class TestSignal:
    def test_fire_resumes_all_waiters(self, engine):
        signal = Signal(engine)
        results = []

        def waiter(tag):
            value = yield signal.wait()
            results.append((tag, value))

        def firer():
            yield engine.timeout(5.0)
            count = signal.fire("go")
            return count
        engine.process(waiter("a"))
        engine.process(waiter("b"))
        assert engine.run_process(firer()) == 2
        engine.run()
        assert sorted(results) == [("a", "go"), ("b", "go")]

    def test_fire_with_no_waiters(self, engine):
        signal = Signal(engine)
        assert signal.fire() == 0
        assert signal.fire_count == 1

    def test_waiters_after_fire_wait_for_next(self, engine):
        signal = Signal(engine)
        signal.fire("first")

        def proc():
            value = yield signal.wait()
            return value

        def firer():
            yield engine.timeout(1.0)
            signal.fire("second")
        engine.process(firer())
        assert engine.run_process(proc()) == "second"

    def test_waiter_count(self, engine):
        signal = Signal(engine)
        assert signal.waiter_count == 0
        signal.wait()
        signal.wait()
        assert signal.waiter_count == 2
        signal.fire()
        assert signal.waiter_count == 0
