"""Generated delivery paths (codegen): the three-way bit-exactness ladder.

The dispatcher serves event raises three ways -- generated Python fast
paths (default), interpreted plan replay (``REPRO_FLOW_COMPILE=0``), and
the uncached linear scan (``REPRO_FLOW_CACHE=0``) -- and the contract is
that the three are *observably identical*: same handlers in the same
order, same per-handle statistics, bit-identical simulated time and
category accounting, identical profiler stacks.  These tests drive the
corner cases directly (thread delegation, time limits, guard exceptions,
mid-raise uninstalls), plus the machinery around the ladder: shape
sharing, the step-cap fallback, generation/epoch hygiene, the
prechange-relative bench gate, and the obs ``compiled-path`` metric
requirement.
"""

import pytest

from repro.bench.regression import (DEFAULT_FAIL_PCT, bench_fail_pct)
from repro.bench.wallclock import (compare_to_baseline, host_fingerprint,
                                   run_suite)
from repro.hw.cpu import ChargeError
from repro.obs.__main__ import _missing_categories
from repro.obs.profiler import CpuProfiler
from repro.obs.registry import MetricsRegistry
from repro.sim import Engine
from repro.spin import SpinKernel
from repro.spin.codegen import MAX_COMPILED_STEPS, shape_cache_size
from repro.spin.flowcache import FlowEntry

MODES = ("compiled", "replay", "linear")


class _Side:
    """One kernel driven through a scenario under one ladder rung.

    ``compiled`` and ``replay`` raise along held :class:`FlowEntry`
    objects, one per flow key (guards on flow-routed events are pure
    functions of the key -- the flowcache contract); ``linear`` uses the
    flowless ``raise_event``.  ``send_flowless`` raises without a flow on
    every rung, which on the compiled rung exercises the generated *scan*
    (live guard calls) rather than a recorded plan.  ``compile_enabled``
    is forced per side so the tests are independent of the process
    environment.
    """

    def __init__(self, mode: str):
        assert mode in MODES
        self.mode = mode
        self.engine = Engine()
        # One shared kernel name: profiler folded stacks lead with it,
        # and the parity test compares them byte-for-byte across modes.
        self.kernel = SpinKernel(self.engine, "gen-kernel")
        self.dispatcher = self.kernel.dispatcher
        self.dispatcher.flow_cache.compile_enabled = (mode == "compiled")
        self.event = self.dispatcher.declare("Gen.Packet")
        self.flows = {}
        self.handles = []
        self.log = []

    def flow(self, key):
        if key not in self.flows:
            self.flows[key] = FlowEntry((key,))
        return self.flows[key]

    def run(self, fn):
        self.engine.run_process(self.kernel.kernel_path(fn), name="gen-op")
        self.engine.run()

    def install(self, handler=None, **kwargs):
        slot = len(self.handles)
        if handler is None:
            def handler(*args, _slot=slot):
                self.log.append((_slot, args))
        self.run(lambda: self.handles.append(
            self.dispatcher.install(self.event, handler,
                                    label="h%d" % slot, **kwargs)))
        return self.handles[-1]

    def send(self, key):
        if self.mode == "linear":
            self.run(lambda: self.dispatcher.raise_event(self.event, key))
        else:
            self.run(lambda: self.dispatcher.raise_flow(
                self.event, self.flow(key), key))

    def send_flowless(self, key):
        self.run(lambda: self.dispatcher.raise_event(self.event, key))


def _assert_equivalent(sides):
    """Every observable except the flow-cache counters must agree."""
    ref = sides[0]
    for side in sides[1:]:
        assert side.log == ref.log, (side.mode, ref.mode)
        # Bit-identical simulated time and per-category accounting.
        assert side.engine.now == ref.engine.now
        assert (dict(side.kernel.cpu.category_times)
                == dict(ref.kernel.cpu.category_times))
        assert len(side.handles) == len(ref.handles)
        for sh, rh in zip(side.handles, ref.handles):
            assert sh.installed == rh.installed
            assert sh.invocations == rh.invocations
            assert sh.guard_rejections == rh.guard_rejections
            assert sh.terminations == rh.terminations
            assert sh.failures == rh.failures
        assert (side.dispatcher.total_invocations
                == ref.dispatcher.total_invocations)
        assert side.dispatcher.total_raises == ref.dispatcher.total_raises


def _three_way(scenario):
    """Run ``scenario(side)`` under all three modes and cross-check."""
    sides = [_Side(mode) for mode in MODES]
    for side in sides:
        scenario(side)
    _assert_equivalent(sides)
    # The scenario really did exercise the rung it claims to.
    assert sides[0].dispatcher.flow_cache.compile_enabled
    assert not sides[1].dispatcher.flow_cache.compile_enabled
    return sides


# ---------------------------------------------------------------------------
# directed three-way equivalence
# ---------------------------------------------------------------------------

class TestThreeWayEquivalence:
    def test_plain_handlers_replay_compiled(self):
        def scenario(side):
            side.install()
            side.install(guard=lambda key: key % 2 == 0)
            for key in (0, 1, 2, 3, 0, 1, 2, 3):
                side.send(key)
        sides = _three_way(scenario)
        cache = sides[0].dispatcher.flow_cache
        assert cache.compiled_plans >= 4   # one plan per flow key
        assert cache.compiled_replays == 4  # second pass over the keys
        assert sides[1].dispatcher.flow_cache.compiled_replays == 0
        assert sides[1].dispatcher.flow_cache.hits == 4  # interpreted replay

    def test_flowless_scan_matches_interpreter(self):
        def scenario(side):
            side.install()
            side.install(guard=lambda value: value % 2 == 0)
            for value in range(6):
                side.send_flowless(value)
        sides = _three_way(scenario)
        assert sides[0].dispatcher.flow_cache.compiled_scan_raises == 6
        assert sides[1].dispatcher.flow_cache.compiled_scan_raises == 0

    def test_thread_mode_delegates_identically(self):
        def scenario(side):
            side.install()
            side.install(mode="thread")
            side.install(mode="thread", guard=lambda key: key > 0)
            for key in (0, 1, 1, 0):
                side.send(key)
        _three_way(scenario)

    def test_time_limit_terminations(self):
        def scenario(side):
            def hog(*args):
                side.kernel.cpu.charge(50.0, "handler")
            side.install(handler=hog, time_limit=10.0)
            side.install()  # delivery continues after a termination
            for _ in range(3):
                side.send(0)
        sides = _three_way(scenario)
        for side in sides:
            assert side.handles[0].terminations == 3

    def test_guard_exception_is_never_cached(self):
        def scenario(side):
            def bad_guard(key):
                raise ValueError("guard blew up")
            side.install(guard=bad_guard)
            side.install()
            for _ in range(3):
                side.send(0)
        sides = _three_way(scenario)
        for side in sides:
            assert side.handles[0].failures == 3
            assert side.handles[0].invocations == 0
            assert side.handles[1].invocations == 3
        # Failure accounting must re-run per packet: a raise in which a
        # guard threw records no plan, so the compiled rung never replays.
        assert sides[0].flows[0].plans == {}
        assert sides[0].dispatcher.flow_cache.compiled_replays == 0

    def test_generated_scan_contains_guard_exceptions(self):
        def scenario(side):
            def bad_guard(value):
                raise ValueError("guard blew up")
            side.install(guard=bad_guard)
            side.install()
            for value in range(3):
                side.send_flowless(value)
        sides = _three_way(scenario)
        for side in sides:
            assert side.handles[0].failures == 3
            assert side.handles[1].invocations == 3
        assert sides[0].dispatcher.flow_cache.compiled_scan_raises == 3

    def test_guard_truthiness_exception_contained(self):
        # The generated scan keeps ``not guard(...)`` inside the try: a
        # verdict object whose __bool__ throws is contained exactly as
        # the interpreter contains it.
        class Explosive:
            def __bool__(self):
                raise RuntimeError("no verdict")

        def scenario(side):
            side.install(guard=lambda value: Explosive())
            side.install()
            side.send_flowless(0)
            side.send_flowless(1)
        sides = _three_way(scenario)
        for side in sides:
            assert side.handles[0].failures == 2

    def test_handler_exception_contained(self):
        def scenario(side):
            def boom(*args):
                raise RuntimeError("handler blew up")
            side.install(handler=boom)
            side.install()
            for _ in range(3):
                side.send(0)
        sides = _three_way(scenario)
        for side in sides:
            assert side.handles[0].failures == 3
            assert side.handles[1].invocations == 3

    def test_mid_raise_uninstall_skips_later_handler(self):
        def scenario(side):
            state = {"sends": 0}

            def saboteur(*args):
                side.log.append(("saboteur", args))
                if state["sends"] == 2 and side.handles[1].installed:
                    side.handles[1].uninstall()

            side.install(handler=saboteur)
            side.install()  # the victim: uninstalled mid-raise on send 2
            for _ in range(4):
                state["sends"] += 1
                side.send(0)
        sides = _three_way(scenario)
        for side in sides:
            # Send 2 replays the recorded plan (generated code on the
            # compiled rung); the uninstall lands before the victim's
            # step, so it saw send 1 only and never runs again.
            assert side.handles[1].invocations == 1
            assert not side.handles[1].installed

    def test_raise_outside_kernel_context_raises_everywhere(self):
        for mode in MODES:
            side = _Side(mode)
            side.install(guard=lambda key: True)
            side.send(0)  # warm: compiled rung records + compiles the plan
            with pytest.raises(ChargeError):
                if mode == "linear":
                    side.dispatcher.raise_event(side.event, 0)
                else:
                    side.dispatcher.raise_flow(side.event, side.flow(0), 0)

    def test_profiler_sees_identical_stacks(self):
        folded = {}
        for mode in MODES:
            side = _Side(mode)
            profiler = CpuProfiler()
            profiler.attach([side.kernel])
            side.install()
            side.install(guard=lambda key: key != 1)
            for key in (0, 1, 2, 3, 0, 1, 2, 3):
                side.send(key)
            folded[mode] = profiler.folded_text()
        assert folded["compiled"] == folded["replay"] == folded["linear"]
        assert "Gen.Packet" in folded["compiled"]

    def test_metrics_snapshot_identical_modulo_flowcache(self):
        snapshots = {}
        for mode in MODES:
            side = _Side(mode)
            side.install()
            side.install(guard=lambda key: key % 2 == 0)
            for key in (0, 1, 2, 0, 1, 2):
                side.send(key)
            registry = MetricsRegistry()
            side.dispatcher.register_metrics(registry)
            side.kernel.cpu.register_metrics(registry)
            snapshots[mode] = registry.snapshot()

        # The flow-cache counters legitimately differ across rungs (that
        # is what they measure); everything else must not.
        def scrub(snapshot):
            return {name: entry for name, entry in snapshot.items()
                    if not name.startswith("spin.flowcache.")}
        assert (scrub(snapshots["compiled"]) == scrub(snapshots["replay"])
                == scrub(snapshots["linear"]))

        # Within the cached rungs even hit/miss accounting agrees; only
        # the compiled.* counters distinguish them.
        def cache_only(snapshot):
            return {name: entry for name, entry in snapshot.items()
                    if name.startswith("spin.flowcache.")
                    and not name.startswith("spin.flowcache.compiled.")}
        assert (cache_only(snapshots["compiled"])
                == cache_only(snapshots["replay"]))


# ---------------------------------------------------------------------------
# shape sharing and the step cap
# ---------------------------------------------------------------------------

class TestShapeCache:
    def test_same_shape_shares_code_object(self):
        side = _Side("compiled")
        side.install()
        side.install(guard=lambda key: True)
        side.send("a")
        side.send("b")
        plan_a = side.flows["a"].plans[side.event]
        plan_b = side.flows["b"].plans[side.event]
        assert plan_a.fn is not plan_b.fn  # distinct bound factories...
        assert plan_a.fn.__code__ is plan_b.fn.__code__  # ...one code object
        assert side.dispatcher.flow_cache.compiled_shape_hits >= 1

    def test_shape_cache_is_process_wide(self):
        before = shape_cache_size()
        side = _Side("compiled")
        side.install()
        side.send(0)
        assert shape_cache_size() >= before  # grows at most per new shape

    def test_step_cap_falls_back_to_interpreted_replay(self):
        def scenario(side):
            for _ in range(MAX_COMPILED_STEPS + 1):
                side.install()
            side.send(0)
            side.send(0)
        sides = _three_way(scenario)
        compiled_side = sides[0]
        plan = compiled_side.flows[0].plans[compiled_side.event]
        assert len(plan.steps) == MAX_COMPILED_STEPS + 1
        assert plan.fn is None  # past the cap: interpreted replay serves it
        assert compiled_side.dispatcher.flow_cache.compiled_plans == 0
        # Replays still count as cache hits even without generated code.
        assert compiled_side.dispatcher.flow_cache.hits >= 1


# ---------------------------------------------------------------------------
# generations: eviction/re-admission must never resurrect a stale plan
# ---------------------------------------------------------------------------

class TestGenerationHygiene:
    def test_epochs_never_recur(self, kernel):
        """Uninstall/reinstall may not restore an old generation value."""
        event = kernel.dispatcher.declare("Epoch.Evt")
        seen = set()
        for _ in range(5):
            handle = kernel.dispatcher.install(event, lambda *a: None)
            assert event.generation not in seen
            seen.add(event.generation)
            handle.uninstall()
            assert event.generation not in seen
            seen.add(event.generation)

    def test_epochs_shared_across_events(self, kernel):
        a = kernel.dispatcher.declare("Epoch.A")
        b = kernel.dispatcher.declare("Epoch.B")
        kernel.dispatcher.install(a, lambda *x: None)
        kernel.dispatcher.install(b, lambda *x: None)
        assert a.generation != b.generation

    def test_forged_generation_cannot_resurrect_stale_plan(self):
        """Regression: plan validity is snapshot identity, so even a plan
        whose recorded generation coincides with the event's current one
        (the failure mode of a wrapped or reset counter) must not replay.
        """
        side = _Side("compiled")
        hits = []
        side.install(handler=lambda *a: hits.append("old"))
        side.send(0)
        stale_plan = side.flows[0].plans[side.event]
        assert stale_plan.snapshot is side.event._snapshot

        # The entry (and its plan) stays held across the uninstall --
        # an in-flight packet header keeps FlowEntry objects alive even
        # after cache eviction.
        side.run(side.handles[0].uninstall)
        side.install(handler=lambda *a: hits.append("new"))

        # Forge the counter coincidence a non-monotonic generation could
        # produce.  Identity validation must shrug it off.
        stale_plan.generation = side.event.generation
        assert side.flows[0].plans[side.event] is stale_plan
        invalidations_before = side.dispatcher.flow_cache.invalidations
        side.send(0)
        assert hits == ["old", "new"]  # the *new* handler was delivered to
        assert (side.dispatcher.flow_cache.invalidations
                == invalidations_before + 1)
        # And the entry now carries a fresh plan against the live snapshot.
        assert side.flows[0].plans[side.event] is not stale_plan
        assert side.flows[0].plans[side.event].snapshot is side.event._snapshot


# ---------------------------------------------------------------------------
# the bench gate: prechange-relative ratios fail, baseline drift informs
# ---------------------------------------------------------------------------

def _report(ratio: float, fingerprint=None):
    """A fabricated schema-5 report whose workload runs at ``ratio`` times
    its same-run prechange leg."""
    return {
        "quick": True,
        "host": host_fingerprint(),
        "workloads": {
            "w": {"fingerprint": {"f": 1}, "events_per_sec": 100.0 * ratio},
        },
        "prechange": {
            "w": {"fingerprint": fingerprint or {"f": 1},
                  "events_per_sec": 100.0, "wall_s": 1.0},
        },
    }


class TestPrechangeGate:
    def test_seeded_regression_fails(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FAIL_PCT", raising=False)
        rows = compare_to_baseline(_report(0.5), {})
        assert not rows["w"]["ok"]
        assert any("prechange" in err for err in rows["w"]["errors"])
        assert rows["w"]["events_per_sec_vs_prechange"] == 0.5

    def test_small_wobble_passes(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FAIL_PCT", raising=False)
        rows = compare_to_baseline(_report(0.95), {})
        assert rows["w"]["ok"]
        assert not rows["w"]["errors"]

    def test_fingerprint_divergence_fails(self):
        rows = compare_to_baseline(_report(2.0, fingerprint={"f": 2}), {})
        assert not rows["w"]["ok"]
        assert any("divergence" in err for err in rows["w"]["errors"])

    def test_fail_pct_env_loosens(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FAIL_PCT", "60")
        rows = compare_to_baseline(_report(0.5), {})
        assert rows["w"]["ok"]
        monkeypatch.setenv("REPRO_BENCH_FAIL_PCT", "garbage")
        assert bench_fail_pct() == DEFAULT_FAIL_PCT
        monkeypatch.delenv("REPRO_BENCH_FAIL_PCT", raising=False)
        assert bench_fail_pct() == DEFAULT_FAIL_PCT

    def test_cross_machine_slowdown_is_labeled(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_WARN_PCT", raising=False)
        report = _report(1.0)
        baseline = {
            "host": {"python": "0.0.0", "machine": "vax"},
            "quick": {"workloads": {
                "w": {"fingerprint": {"f": 1}, "events_per_sec": 1000.0},
            }},
        }
        rows = compare_to_baseline(report, baseline)
        assert rows["w"]["ok"]  # committed-baseline slowdowns never fail
        assert any("different or unknown host" in warning
                   for warning in rows["w"]["warnings"])
        # Same-host baselines keep the plain warning text.
        baseline["host"] = report["host"]
        rows = compare_to_baseline(report, baseline)
        assert any("committed baseline" in w and "unknown host" not in w
                   for w in rows["w"]["warnings"])

    def test_run_suite_carries_host_and_prechange_leg(self):
        suite = run_suite(quick=True, names=["dispatcher_micro"])
        assert suite["host"] == host_fingerprint()
        row = suite["comparison"]["dispatcher_micro"]
        if suite.get("prechange"):  # codegen armed in this environment
            leg = suite["prechange"]["dispatcher_micro"]
            assert (leg["fingerprint"]
                    == suite["workloads"]["dispatcher_micro"]["fingerprint"])
            assert "events_per_sec_vs_prechange" in row


# ---------------------------------------------------------------------------
# obs: the compiled-path metric requirement
# ---------------------------------------------------------------------------

class TestCompiledPathRequirement:
    SNAPSHOT_ON = {
        "spin.flowcache.compiled.replays": {"type": "gauge", "value": 7},
        "spin.flowcache.compiled.scan_raises": {"type": "gauge", "value": 0},
    }
    SNAPSHOT_OFF = {
        "spin.flowcache.compiled.replays": {"type": "gauge", "value": 0},
        "spin.flowcache.compiled.scan_raises": {"type": "gauge", "value": 0},
    }

    def test_satisfied_by_nonzero_metric(self):
        missing = _missing_categories(
            ["dispatch", "compiled-path"], {"dispatch": 1.0}, self.SNAPSHOT_ON)
        assert missing == []

    def test_zero_valued_snapshot_entries_do_not_satisfy(self):
        # Snapshot values are {"type", "value"} dicts -- always truthy --
        # so the requirement must unwrap them, not bool() them.
        missing = _missing_categories(
            ["compiled-path"], {"dispatch": 1.0}, self.SNAPSHOT_OFF)
        assert missing == ["compiled-path"]

    def test_absent_metrics_do_not_satisfy(self):
        assert _missing_categories(["compiled-path"], {}, {}) == \
            ["compiled-path"]
        assert _missing_categories(["compiled-path"], {}, None) == \
            ["compiled-path"]


# ---------------------------------------------------------------------------
# chaos: campaigns check the full ladder when codegen is armed
# ---------------------------------------------------------------------------

class TestChaosLadder:
    def _spec(self):
        from repro.chaos import CampaignSpec
        from repro.hw.link import ImpairmentConfig
        return CampaignSpec(
            name="ladder", seed=977, os_name="spin", device="ethernet",
            workload="tcp_bulk", scale=8_192, duration_us=2_000_000.0,
            config=ImpairmentConfig(loss_good=0.02, duplicate_rate=0.02),
            oracle=True)

    def test_oracle_campaign_checks_both_rungs(self, monkeypatch):
        from repro.chaos import run_campaign
        monkeypatch.delenv("REPRO_FLOW_CACHE", raising=False)
        monkeypatch.delenv("REPRO_FLOW_COMPILE", raising=False)
        verdict = run_campaign(self._spec())
        assert verdict["passed"], verdict["violations"]
        assert not any("diverges" in v for v in verdict["violations"])

    def test_interpreted_campaign_skips_replay_rung(self, monkeypatch):
        # Under REPRO_FLOW_COMPILE=0 the primary run never used generated
        # code, so only the REPRO_FLOW_CACHE=0 oracle applies -- and it
        # must still match.
        from repro.chaos import run_campaign
        monkeypatch.setenv("REPRO_FLOW_COMPILE", "0")
        verdict = run_campaign(self._spec())
        assert verdict["passed"], verdict["violations"]
        assert not any("diverges" in v for v in verdict["violations"])
