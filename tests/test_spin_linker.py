"""Tests for the dynamic linker (paper section 2)."""

import pytest

from repro.spin import (
    Domain,
    DynamicLinker,
    Extension,
    Interface,
    LinkError,
    compile_extension,
)


@pytest.fixture
def domain():
    return Domain.create("app", [
        Interface("UDP", {"Bind": lambda *a: "bound"}),
        Interface("Mbuf", {"Alloc": lambda: "mbuf"}),
    ])


@pytest.fixture
def linker():
    return DynamicLinker()


class TestLinking:
    def test_link_resolves_imports(self, domain, linker):
        seen = {}

        def init(env):
            seen.update(env)
            return []
        ext = compile_extension("app", ["UDP.Bind", "Mbuf.Alloc"], init)
        linked = linker.link(ext, domain)
        assert set(seen) == {"UDP.Bind", "Mbuf.Alloc"}
        assert linked.name == "app"
        assert linked in linker.linked

    def test_init_runs_with_resolved_objects(self, domain, linker):
        ext = compile_extension("app", ["UDP.Bind"],
                                lambda env: env["UDP.Bind"]())
        linked = linker.link(ext, domain)
        assert linked.installed_state == "bound"

    def test_unresolved_symbol_fails_link(self, domain, linker):
        """'If an extension references a symbol that is not contained
        within the logical protection domain ... the link will fail.'"""
        ext = compile_extension("snooper", ["Ethernet.PacketRecv"],
                                lambda env: None)
        with pytest.raises(LinkError, match="unresolved"):
            linker.link(ext, domain)
        assert linker.rejected_count == 1

    def test_partial_resolution_fails_whole_link(self, domain, linker):
        ran = []
        ext = compile_extension("mixed", ["UDP.Bind", "VM.MapPage"],
                                lambda env: ran.append(True))
        with pytest.raises(LinkError):
            linker.link(ext, domain)
        assert not ran  # init must never run on a failed link

    def test_unsigned_extension_rejected(self, domain, linker):
        ext = Extension("rogue", ["UDP.Bind"], lambda env: None)
        with pytest.raises(LinkError, match="not signed"):
            linker.link(ext, domain)

    def test_tampered_imports_invalidate_signature(self, domain, linker):
        ext = compile_extension("sneaky", ["UDP.Bind"], lambda env: None)
        ext.imports.append("VM.MapPage")  # tamper after signing
        with pytest.raises(LinkError, match="not signed"):
            linker.link(ext, domain)

    def test_wider_domain_allows_more(self, linker):
        app = Domain.create("app", [Interface("UDP", {"Bind": 1})])
        kernel = app.combine(
            Domain.create("k", [Interface("VM", {"MapPage": 2})]))
        ext = compile_extension("driver", ["VM.MapPage"], lambda env: None)
        with pytest.raises(LinkError):
            linker.link(ext, app)
        linker.link(ext, kernel)  # privileged domain: fine


class TestUnlinking:
    def test_unlink_uninstalls_handles(self, domain, linker):
        class Handle:
            def __init__(self):
                self.uninstalled = False

            def uninstall(self):
                self.uninstalled = True

        handle = Handle()
        ext = compile_extension("app", ["UDP.Bind"], lambda env: [handle])
        linked = linker.link(ext, domain)
        linker.unlink(linked)
        assert handle.uninstalled
        assert linked.unlinked
        assert linked not in linker.linked

    def test_unlink_single_handle(self, domain, linker):
        class Handle:
            uninstalled = False

            def uninstall(self):
                self.uninstalled = True
        handle = Handle()
        ext = compile_extension("app", ["UDP.Bind"], lambda env: handle)
        linked = linker.link(ext, domain)
        linker.unlink(linked)
        assert handle.uninstalled

    def test_double_unlink_rejected(self, domain, linker):
        ext = compile_extension("app", ["UDP.Bind"], lambda env: [])
        linked = linker.link(ext, domain)
        linker.unlink(linked)
        with pytest.raises(LinkError):
            linker.unlink(linked)

    def test_relink_after_unlink(self, domain, linker):
        """Extensions 'come and go with their corresponding applications'."""
        count = {"inits": 0}

        def init(env):
            count["inits"] += 1
            return []
        ext = compile_extension("app", ["UDP.Bind"], init)
        linked = linker.link(ext, domain)
        linker.unlink(linked)
        linker.link(ext, domain)
        assert count["inits"] == 2
