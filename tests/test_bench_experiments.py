"""Smoke tests of the experiment harness functions (small trip counts).

The full shape assertions live in ``benchmarks/``; these tests pin the
harness *interfaces* -- result structure, units, and the most basic
relationships -- so refactors of the bench code fail fast under plain
pytest.
"""

import pytest

from repro.bench.ablations import delivery_mode_ablation
from repro.bench.forwarding import measure_plexus_forwarding
from repro.bench.latency import (
    PAPER_FIGURE5_US,
    figure5,
    measure_plexus_udp_rtt,
    measure_raw_rtt,
    measure_unix_udp_rtt,
)
from repro.bench.micro import dispatcher_overhead_per_handler
from repro.bench.throughput import (
    PAPER_SECTION42_MBPS,
    measure_raw_throughput,
    measure_udp_throughput,
)
from repro.bench.video import measure_video_server


class TestLatencyHarness:
    def test_summary_structure(self):
        summary = measure_plexus_udp_rtt("ethernet", trips=3)
        assert summary.n == 3
        assert summary.minimum <= summary.mean <= summary.maximum

    def test_deterministic_repeats(self):
        a = measure_plexus_udp_rtt("t3", trips=3).mean
        b = measure_plexus_udp_rtt("t3", trips=3).mean
        assert a == b

    def test_steady_state_has_low_variance(self):
        summary = measure_plexus_udp_rtt("atm", trips=5)
        assert summary.stdev < summary.mean * 0.05

    def test_raw_below_full_stack(self):
        raw = measure_raw_rtt("ethernet", trips=3).mean
        full = measure_plexus_udp_rtt("ethernet", trips=3).mean
        assert raw < full

    def test_unix_measure_works_on_all_devices(self):
        for device in ("ethernet", "atm", "t3"):
            assert measure_unix_udp_rtt(device, trips=2).mean > 0

    def test_figure5_rows_complete(self):
        rows = figure5(trips=2, devices=("t3",))
        systems = {row["system"] for row in rows}
        assert systems == {"raw-driver", "plexus-interrupt",
                           "plexus-thread", "digital-unix"}

    def test_paper_anchor_table_is_wellformed(self):
        for key, value in PAPER_FIGURE5_US.items():
            assert value > 0, key


class TestThroughputHarness:
    def test_udp_throughput_positive_and_bounded(self):
        mbps = measure_udp_throughput("spin", "t3", 150_000)
        assert 0 < mbps <= 46.0

    def test_raw_throughput_below_wire(self):
        mbps = measure_raw_throughput("t3", frames=50)
        assert 0 < mbps <= 46.0

    def test_paper_anchor_table(self):
        assert PAPER_SECTION42_MBPS[("atm", "plexus")] == 33.0


class TestVideoHarness:
    def test_result_fields(self):
        result = measure_video_server("spin", 2, duration_s=0.2)
        assert set(result) >= {"os", "streams", "utilization",
                               "offered_mbps", "delivered_mbps",
                               "deadline_misses", "frames_sent"}
        assert 0 <= result["utilization"] <= 1.0
        assert result["streams"] == 2

    def test_offered_load_formula(self):
        result = measure_video_server("spin", 3, duration_s=0.2)
        assert result["offered_mbps"] == pytest.approx(9.0)


class TestForwardingHarness:
    def test_result_fields(self):
        result = measure_plexus_forwarding(trips=3)
        assert result["system"] == "plexus"
        assert result["rtt"].n == 3
        assert result["connect_us"] > 0


class TestMicroAndAblationHarness:
    def test_dispatcher_fields(self):
        result = dispatcher_overhead_per_handler(handlers=4, raises=10)
        assert result["per_handler_us"] > 0
        assert result["ratio_to_procedure_call"] > 0

    def test_delivery_mode_fields(self):
        result = delivery_mode_ablation(trips=2)
        assert result["thread_us"] > result["interrupt_us"]
