"""Tests for the HTTP layer (parsers and connection state machines)."""

import pytest

from repro.net.http import (
    HttpError,
    build_request,
    build_response,
    parse_request,
    parse_response,
)

from nethelpers import make_pair


class TestWireFormat:
    def test_request_roundtrip(self):
        raw = build_request("GET", "/index.html", {"Host": "spin"})
        method, path, headers = parse_request(raw)
        assert method == "GET"
        assert path == "/index.html"
        assert headers["host"] == "spin"

    def test_response_roundtrip(self):
        raw = build_response(200, b"hello world")
        status, headers, body = parse_response(raw)
        assert status == 200
        assert headers["content-length"] == "11"
        assert body == b"hello world"

    def test_response_reason_phrases(self):
        assert b"404 Not Found" in build_response(404, b"")
        assert b"200 OK" in build_response(200, b"")

    def test_incomplete_request_rejected(self):
        with pytest.raises(HttpError):
            parse_request(b"GET / HTTP/1.0\r\n")

    def test_malformed_request_line_rejected(self):
        with pytest.raises(HttpError):
            parse_request(b"GARBAGE\r\n\r\n")

    def test_malformed_header_rejected(self):
        with pytest.raises(HttpError):
            parse_request(b"GET / HTTP/1.0\r\nno-colon-here\r\n\r\n")

    def test_body_truncated_to_content_length(self):
        raw = build_response(200, b"body") + b"EXTRA"
        _status, _headers, body = parse_response(raw)
        assert body == b"body"

    def test_method_case_normalized(self):
        raw = build_request("get", "/")
        method, _path, _headers = parse_request(raw)
        assert method == "GET"


class TestOverTcp:
    def _serve(self):
        from repro.net.http import HttpClientConnection, HttpServerConnection
        engine, wire, a, b = make_pair()
        pages = {"/": b"<h1>Plexus</h1>", "/big": bytes(30_000)}

        def router(method, path):
            if path in pages:
                return 200, pages[path]
            return 404, b"nope"

        def on_accept(tcb):
            HttpServerConnection(tcb, router)
        b.tcp.listen(80, on_accept)
        responses = []
        conn_box = {}

        def connect():
            tcb = a.tcp.connect(b.my_ip, 80)
            conn_box["conn"] = HttpClientConnection(
                tcb, lambda status, body: responses.append((status, body)))
        a.run_kernel(connect)
        engine.run()
        return engine, a, conn_box["conn"], responses

    def test_get_over_real_tcp(self):
        engine, a, conn, responses = self._serve()
        a.run_kernel(lambda: conn.get("/"))
        engine.run()
        assert responses == [(200, b"<h1>Plexus</h1>")]

    def test_large_body_spans_segments(self):
        engine, a, conn, responses = self._serve()
        a.run_kernel(lambda: conn.get("/big"))
        engine.run()
        assert responses[0][0] == 200
        assert len(responses[0][1]) == 30_000

    def test_404(self):
        engine, a, conn, responses = self._serve()
        a.run_kernel(lambda: conn.get("/missing"))
        engine.run()
        assert responses == [(404, b"nope")]

    def test_pipelined_requests(self):
        engine, a, conn, responses = self._serve()

        def two():
            conn.get("/")
            conn.get("/missing")
        a.run_kernel(two)
        engine.run()
        assert [status for status, _b in responses] == [200, 404]
