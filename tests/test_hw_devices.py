"""Tests for the disk and framebuffer device models."""

import pytest

from repro.bench.testbed import RawEchoHost
from repro.hw import Disk, Framebuffer


@pytest.fixture
def host(engine):
    return RawEchoHost(engine, "dev-host", echo=False)


class TestDisk:
    def test_read_returns_bytes_after_media_time(self, engine, host):
        disk = Disk(host)

        def proc():
            data = yield from disk.read(10_000)
            return data, engine.now
        data, when = engine.run_process(proc())
        assert len(data) == 10_000
        assert when == pytest.approx(disk.media_time_us(10_000))

    def test_media_time_scales_with_size(self, host):
        disk = Disk(host)
        assert disk.media_time_us(20_000) > disk.media_time_us(10_000)

    def test_reads_serialize_on_media(self, engine, host):
        disk = Disk(host)
        finishes = []

        def reader():
            yield from disk.read(10_000)
            finishes.append(engine.now)
        engine.process(reader())
        engine.process(reader())
        engine.run()
        one = disk.media_time_us(10_000)
        assert finishes[0] == pytest.approx(one)
        assert finishes[1] == pytest.approx(2 * one)

    def test_read_charges_cpu(self, host):
        disk = Disk(host)
        marker = host.cpu.begin()
        disk.read_charges(12_500)
        cost = host.cpu.end(marker)
        expected = (host.costs.disk_read_setup +
                    12_500 * host.costs.disk_read_per_byte)
        assert cost == pytest.approx(expected)

    def test_zero_read_rejected(self, engine, host):
        disk = Disk(host)

        def proc():
            yield from disk.read(0)
        with pytest.raises(ValueError):
            engine.run_process(proc())

    def test_counters(self, engine, host):
        disk = Disk(host)

        def proc():
            yield from disk.read(100)
        engine.run_process(proc())
        assert disk.reads == 1
        assert disk.bytes_read == 100


class TestFramebuffer:
    def test_write_charges_slow_path(self, host):
        fb = Framebuffer(host)
        marker = host.cpu.begin()
        fb.write(10_000)
        cost = host.cpu.end(marker)
        assert cost == pytest.approx(
            10_000 * host.costs.framebuffer_write_per_byte)

    def test_framebuffer_is_much_slower_than_ram(self, host):
        """The paper: 'a factor of 10 times slower than standard RAM'."""
        ratio = (host.costs.framebuffer_write_per_byte /
                 host.costs.copy_per_byte)
        assert ratio >= 10

    def test_display_frame_counts(self, host):
        fb = Framebuffer(host)
        host.cpu.begin()
        fb.display_frame(25_000)
        assert fb.frames_displayed == 1
        assert fb.bytes_written == 25_000

    def test_negative_write_rejected(self, host):
        fb = Framebuffer(host)
        with pytest.raises(ValueError):
            fb.write(-1)

    def test_size(self, host):
        fb = Framebuffer(host, width=640, height=480, bytes_per_pixel=2)
        assert fb.size_bytes == 640 * 480 * 2
