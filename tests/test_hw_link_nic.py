"""Tests for wires, switches, and NIC models."""

import pytest

from repro.bench.testbed import RawEchoHost, build_raw_pair
from repro.hw import (
    EthernetSegment,
    ForeAtm,
    LanceEthernet,
    PointToPointLink,
    Switch,
    T3Nic,
)
from repro.hw.link import transmission_time_us


def make_host_nic(engine, nic_cls, name, addr, **kwargs):
    host = RawEchoHost(engine, "host-" + name, echo=False)
    nic = nic_cls(engine, name, addr, **kwargs)
    host.add_nic(nic)
    return host, nic


class TestWireMath:
    def test_transmission_time(self):
        assert transmission_time_us(1250, 10e6) == pytest.approx(1000.0)

    def test_ethernet_min_frame_padding(self, engine):
        nic = LanceEthernet(engine, "ln0", b"\x00" * 6)
        assert nic.wire_bytes(20) == 64 + 12
        assert nic.wire_bytes(1000) == 1012

    def test_atm_cell_padding(self, engine):
        nic = ForeAtm(engine, "fa0", "a")
        # 40 payload + 8 AAL5 trailer = 48 -> exactly one 53-byte cell.
        assert nic.wire_bytes(40) == 53
        assert nic.wire_bytes(41) == 106

    def test_t3_framing(self, engine):
        nic = T3Nic(engine, "t3", "t")
        assert nic.wire_bytes(100) == 104


class TestEthernetSegment:
    def test_unicast_delivery(self, engine):
        seg = EthernetSegment(engine)
        host_a, nic_a = make_host_nic(engine, LanceEthernet, "a", b"\x0a" * 6)
        host_b, nic_b = make_host_nic(engine, LanceEthernet, "b", b"\x0b" * 6)
        host_c, nic_c = make_host_nic(engine, LanceEthernet, "c", b"\x0c" * 6)
        for nic in (nic_a, nic_b, nic_c):
            seg.attach(nic)
        got = {"b": [], "c": []}
        host_b.on_frame = got["b"].append
        host_c.on_frame = got["c"].append

        def send():
            yield from host_a.kernel_path(
                lambda: nic_a.stage_tx(b"x" * 64, b"\x0b" * 6))
        engine.run_process(send())
        engine.run()
        assert len(got["b"]) == 1
        assert got["c"] == []  # filtered by MAC

    def test_broadcast_reaches_all(self, engine):
        seg = EthernetSegment(engine)
        hosts = []
        for tag in (b"\x0a", b"\x0b", b"\x0c"):
            host, nic = make_host_nic(engine, LanceEthernet,
                                      tag.hex(), tag * 6)
            seg.attach(nic)
            hosts.append((host, nic))
        got = []
        hosts[1][0].on_frame = got.append
        hosts[2][0].on_frame = got.append

        def send():
            yield from hosts[0][0].kernel_path(
                lambda: hosts[0][1].stage_tx(b"y" * 64, b"\xff" * 6))
        engine.run_process(send())
        engine.run()
        assert len(got) == 2

    def test_shared_medium_serializes(self, engine):
        """Two senders on one segment cannot overlap transmissions."""
        seg = EthernetSegment(engine, propagation_us=0.0)
        host_a, nic_a = make_host_nic(engine, LanceEthernet, "a", b"\x0a" * 6)
        host_b, nic_b = make_host_nic(engine, LanceEthernet, "b", b"\x0b" * 6)
        host_c, nic_c = make_host_nic(engine, LanceEthernet, "c", b"\x0c" * 6)
        for nic in (nic_a, nic_b, nic_c):
            seg.attach(nic)
        arrivals = []
        host_c.on_frame = lambda data: arrivals.append(engine.now)
        frame = bytes(1000)
        wire_us = transmission_time_us(nic_a.wire_bytes(1000), 10e6)

        def send(host, nic):
            yield from host.kernel_path(
                lambda: nic.stage_tx(frame, b"\x0c" * 6))
        engine.process(send(host_a, nic_a))
        engine.process(send(host_b, nic_b))
        engine.run()
        assert len(arrivals) == 2
        # Second frame finishes a full wire-time after the first.
        assert arrivals[1] - arrivals[0] >= wire_us * 0.95

    def test_promiscuous_mode_sees_everything(self, engine):
        seg = EthernetSegment(engine)
        host_a, nic_a = make_host_nic(engine, LanceEthernet, "a", b"\x0a" * 6)
        host_b, nic_b = make_host_nic(engine, LanceEthernet, "b", b"\x0b" * 6)
        host_c, nic_c = make_host_nic(engine, LanceEthernet, "c", b"\x0c" * 6)
        for nic in (nic_a, nic_b, nic_c):
            seg.attach(nic)
        nic_c.promiscuous = True
        got = []
        host_c.on_frame = got.append

        def send():
            yield from host_a.kernel_path(
                lambda: nic_a.stage_tx(b"z" * 64, b"\x0b" * 6))
        engine.run_process(send())
        engine.run()
        assert len(got) == 1


class TestPointToPoint:
    def test_full_duplex(self, engine):
        link = PointToPointLink(engine, bandwidth_bps=45e6, propagation_us=1.0)
        host_a, nic_a = make_host_nic(engine, T3Nic, "a", "addr-a")
        host_b, nic_b = make_host_nic(engine, T3Nic, "b", "addr-b")
        link.attach(nic_a)
        link.attach(nic_b)
        arrivals = {"a": [], "b": []}
        host_a.on_frame = lambda d: arrivals["a"].append(engine.now)
        host_b.on_frame = lambda d: arrivals["b"].append(engine.now)

        def send(host, nic, dst):
            yield from host.kernel_path(lambda: nic.stage_tx(bytes(1000), dst))
        engine.process(send(host_a, nic_a, "addr-b"))
        engine.process(send(host_b, nic_b, "addr-a"))
        engine.run()
        # Both directions complete at (nearly) the same time: full duplex.
        assert len(arrivals["a"]) == len(arrivals["b"]) == 1
        assert abs(arrivals["a"][0] - arrivals["b"][0]) < 10.0

    def test_third_endpoint_rejected(self, engine):
        link = PointToPointLink(engine, 45e6)
        for tag in ("a", "b"):
            _, nic = make_host_nic(engine, T3Nic, tag, "addr-" + tag)
            link.attach(nic)
        _, extra = make_host_nic(engine, T3Nic, "c", "addr-c")
        with pytest.raises(ValueError):
            link.attach(extra)


class TestSwitch:
    def test_forwards_to_known_port(self, engine):
        switch = Switch(engine, forward_latency_us=10.0)
        host_a, nic_a = make_host_nic(engine, ForeAtm, "a", "atm-a")
        host_b, nic_b = make_host_nic(engine, ForeAtm, "b", "atm-b")
        switch.new_port().attach(nic_a)
        switch.new_port().attach(nic_b)
        got = []
        host_b.on_frame = lambda d: got.append(engine.now)

        def send():
            yield from host_a.kernel_path(
                lambda: nic_a.stage_tx(bytes(100), "atm-b"))
        engine.run_process(send())
        engine.run()
        assert len(got) == 1
        assert switch.frames_forwarded == 1
        assert switch.frames_flooded == 0

    def test_unknown_destination_floods(self, engine):
        switch = Switch(engine)
        host_a, nic_a = make_host_nic(engine, ForeAtm, "a", "atm-a")
        host_b, nic_b = make_host_nic(engine, ForeAtm, "b", "atm-b")
        switch.new_port().attach(nic_a)
        switch.new_port().attach(nic_b)

        def send():
            yield from host_a.kernel_path(
                lambda: nic_a.stage_tx(bytes(100), "atm-unknown"))
        engine.run_process(send())
        engine.run()
        assert switch.frames_flooded == 1


class TestNicBehaviour:
    def test_oversize_frame_rejected(self, engine):
        host, nic = make_host_nic(engine, LanceEthernet, "a", b"\x0a" * 6)

        def send():
            yield from host.kernel_path(
                lambda: nic.stage_tx(bytes(nic.mtu + nic.link_header + 1),
                                     b"\x0b" * 6))
        with pytest.raises(ValueError, match="MTU"):
            engine.run_process(send())

    def test_rx_ring_overflow_drops(self, engine):
        """A slow host sheds load at the receive ring."""
        engine, initiator, responder, nic_a, nic_b = build_raw_pair("atm")
        responder.echo = False
        nic_b.rx_ring_len = 4
        count = []
        responder.on_frame = count.append

        def blast():
            for _ in range(40):
                yield from initiator.kernel_path(
                    lambda: nic_a.stage_tx(bytes(9000), nic_b.address))
        engine.run_process(blast())
        engine.run()
        assert nic_b.rx_drops > 0
        assert len(count) + nic_b.rx_drops == 40

    def test_pio_charges_per_byte(self, engine):
        host, nic = make_host_nic(engine, ForeAtm, "a", "atm-a")
        marker = host.cpu.begin()
        nic.stage_tx(bytes(1000), "atm-b")
        cost = host.cpu.end(marker)
        host.take_deferred()
        expected = nic.profile.fixed_tx + 1000 * nic.profile.pio_tx_per_byte
        assert cost == pytest.approx(expected)

    def test_dma_charges_fixed_only(self, engine):
        host, nic = make_host_nic(engine, T3Nic, "a", "t3-a")
        marker = host.cpu.begin()
        nic.stage_tx(bytes(4000), "t3-b")
        cost = host.cpu.end(marker)
        host.take_deferred()
        assert cost == pytest.approx(nic.profile.fixed_tx)

    def test_tx_counters(self, engine):
        host, nic = make_host_nic(engine, LanceEthernet, "a", b"\x0a" * 6)
        marker = host.cpu.begin()
        nic.stage_tx(bytes(100), b"\x0b" * 6)
        host.cpu.end(marker)
        assert nic.tx_frames == 1
        assert nic.tx_bytes == 100
