"""Every example must stay runnable: they are deliverables, not décor.

Each example is executed in-process (imported and ``main()`` called) with
stdout captured, and its headline output is sanity-checked.
"""

import importlib.util
import io
import pathlib
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(
        "example_%s" % name, EXAMPLES_DIR / ("%s.py" % name))
    module = importlib.util.module_from_spec(spec)
    captured = io.StringIO()
    with redirect_stdout(captured):
        spec.loader.exec_module(module)
        module.main()
    return captured.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart")
        assert "Plexus (in-kernel extension)" in out
        assert "speedup" in out

    def test_custom_protocol(self):
        out = run_example("custom_protocol")
        assert "RDP-lite" in out
        assert "checksum disabled" in out

    def test_http_demo(self):
        out = run_example("http_demo")
        assert "in-kernel HTTP server" in out
        assert "-> 200" in out
        assert "-> 404" in out

    def test_routed_network(self):
        out = run_example("routed_network")
        assert "beta saw: hello across subnets" in out
        assert "time exceeded" in out

    def test_tracing_and_faults(self):
        out = run_example("tracing_and_faults")
        assert "retransmissions" in out
        assert "[SYN]" in out

    @pytest.mark.slow
    def test_video_streaming(self):
        out = run_example("video_streaming")
        assert "saturates at 15 streams" in out
        assert "display" in out

    def test_port_forwarder(self):
        out = run_example("port_forwarder")
        assert "end-to-end TCP: True" in out
        assert "end-to-end TCP: False" in out

    def test_active_messages_demo(self):
        out = run_example("active_messages_demo")
        assert "totals [5, 15, 42]" in out
        assert "rejected at install" in out
