"""Property test: TCP is byte-exact under arbitrary composed impairments.

Hypothesis draws whole :class:`ImpairmentConfig` values -- Gilbert-
Elliott bursty loss, reordering, duplication, jitter -- plus a seed, and
asserts the full chaos-invariant suite holds for a bulk transfer over
the impaired wire.  Because the config is drawn structurally, a failure
shrinks toward the minimal impairment combination that breaks the
stack, which is exactly the repro you want.
"""

from hypothesis import given, settings, strategies as st

from repro.chaos import run_campaign
from repro.chaos.campaign import CampaignSpec
from repro.hw.link import ImpairmentConfig

probabilities = st.floats(min_value=0.0, max_value=0.25)
burst_loss = st.floats(min_value=0.0, max_value=0.45)

configs = st.builds(
    ImpairmentConfig,
    loss_good=st.floats(min_value=0.0, max_value=0.08),
    loss_bad=burst_loss,
    p_good_bad=probabilities,
    p_bad_good=st.floats(min_value=0.2, max_value=1.0),
    duplicate_rate=probabilities,
    duplicate_gap_us=st.floats(min_value=0.0, max_value=1_000.0),
    reorder_rate=probabilities,
    reorder_hold_us=st.floats(min_value=0.0, max_value=1_500.0),
    jitter_us=st.floats(min_value=0.0, max_value=400.0),
)


@given(config=configs, seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_tcp_byte_exact_under_arbitrary_impairments(config, seed):
    spec = CampaignSpec(
        name="prop", seed=seed, os_name="spin", device="ethernet",
        workload="tcp_bulk", scale=6_144, duration_us=2_500_000.0,
        config=config)
    verdict = run_campaign(spec)
    assert verdict["passed"], verdict["violations"]


@given(config=configs, seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=5, deadline=None)
def test_mixed_workload_invariants_under_impairments(config, seed):
    spec = CampaignSpec(
        name="prop-mixed", seed=seed, os_name="spin", device="ethernet",
        workload="mixed", scale=4, duration_us=2_000_000.0,
        config=config)
    verdict = run_campaign(spec)
    assert verdict["passed"], verdict["violations"]
