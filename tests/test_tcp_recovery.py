"""TCP loss-recovery corners: RTO backoff, Karn's rule, fast recovery.

These complement test_net_tcp.py with precise checks on the retransmit
machinery itself: the exponential backoff must double up to (and stop
at) the RTO ceiling, RTT samples must never be taken from retransmitted
segments, and fast recovery must deflate cwnd back to ssthresh when the
recovery point is acked.
"""

from contextlib import contextmanager

from repro.net.tcp import TcpState
from repro.net.tcp.tcb import Tcb

from nethelpers import make_pair
from test_net_tcp import establish


def _is_data_segment(packet_bytes: bytes) -> bool:
    """Heuristic for the direct wire: only data segments carry a payload
    big enough to push the IP packet past headers-only size."""
    return len(packet_bytes) > 200


@contextmanager
def spy_on(name, hook):
    """Wrap ``Tcb.<name>`` so ``hook(self, orig, *args)`` replaces each call.

    Tcb is slotted (no per-instance method override), so spying happens
    at class level; hooks filter on ``self`` to watch one connection.
    """
    orig = getattr(Tcb, name)

    def wrapper(self, *args):
        return hook(self, orig, *args)
    setattr(Tcb, name, wrapper)
    try:
        yield
    finally:
        setattr(Tcb, name, orig)


class TestRtoBackoff:
    def test_backoff_doubles_to_ceiling_then_gives_up(self):
        engine, wire, a, b = make_pair()
        client, server = establish(engine, a, b)
        resets = []
        client.on_reset = lambda: resets.append(True)
        wire.drop_filter = lambda pkt, nh: True  # black hole

        rtos = []

        def spy(tcb, orig):
            if tcb is client:
                rtos.append(tcb.rto)
            orig(tcb)

        with spy_on("_retransmit_one", spy):
            a.run_kernel(lambda: client.send(bytes(512)))
            engine.run()

        # Gave up after the full backoff schedule, signalling the app.
        assert resets == [True]
        assert client.state == TcpState.CLOSED
        assert len(rtos) == client.MAX_RETRANSMITS
        # Each timeout doubles the RTO, saturating at the ceiling.
        for earlier, later in zip(rtos, rtos[1:]):
            assert later == min(earlier * 2, client.MAX_RTO_US)
        assert rtos[-1] == client.MAX_RTO_US

    def test_backoff_resets_after_recovery(self):
        engine, wire, a, b = make_pair()
        client, server = establish(engine, a, b)
        # Drop the first two copies of the first data segment, then heal.
        state = {"drops": 0}

        def drop_twice(pkt, nh):
            if nh == b.my_ip and _is_data_segment(pkt) and state["drops"] < 2:
                state["drops"] += 1
                return True
            return False
        wire.drop_filter = drop_twice

        a.run_kernel(lambda: client.send(bytes(512)))
        engine.run()
        assert state["drops"] == 2
        assert client.retransmits == 2
        # The ack of the third copy cleared the consecutive-timeout count.
        assert client._rexmt_shift == 0
        assert client.state == TcpState.ESTABLISHED


class TestKarn:
    def test_no_rtt_sample_from_retransmitted_segment(self):
        engine, wire, a, b = make_pair()
        client, server = establish(engine, a, b)

        samples = []

        def spy(tcb, orig, sample_us):
            if tcb is client:
                samples.append(sample_us)
            orig(tcb, sample_us)

        dropped = []

        def drop_first_data(pkt, nh):
            if nh == b.my_ip and _is_data_segment(pkt) and not dropped:
                dropped.append(pkt)
                return True
            return False
        wire.drop_filter = drop_first_data

        srtt_before = client.srtt
        assert srtt_before is not None  # handshake took a sample

        with spy_on("_update_rtt", spy):
            a.run_kernel(lambda: client.send(bytes(512)))
            engine.run()
            # The segment was retransmitted, so its ack is ambiguous:
            # Karn's rule forbids sampling it.
            assert dropped and client.retransmits == 1
            assert samples == []
            assert client.srtt == srtt_before

            # A clean (never-retransmitted) segment resumes sampling.
            wire.drop_filter = None
            a.run_kernel(lambda: client.send(bytes(512)))
            engine.run()
            assert len(samples) == 1

    def test_timeout_clears_rtt_sequence(self):
        engine, wire, a, b = make_pair()
        client, server = establish(engine, a, b)
        wire.drop_filter = lambda pkt, nh: nh == b.my_ip and _is_data_segment(pkt)
        a.run_kernel(lambda: client.send(bytes(512)))
        # Run just long enough for one retransmit timeout.
        engine.run(until=engine.now + client.rto * 1.5)
        assert client.retransmits >= 1
        assert client._rtt_seq is None


class TestFastRecovery:
    def test_three_dupacks_trigger_fast_retransmit(self):
        engine, wire, a, b = make_pair()
        received = bytearray()
        client, server = establish(engine, a, b,
                                   server_received=received.extend)
        total = 32 * 1024
        state = {"data_segs": 0, "dropped": 0}

        def drop_sixth_data(pkt, nh):
            if nh == b.my_ip and _is_data_segment(pkt):
                state["data_segs"] += 1
                if state["data_segs"] == 6 and not state["dropped"]:
                    state["dropped"] += 1
                    return True
            return False
        wire.drop_filter = drop_sixth_data

        a.run_kernel(lambda: client.send(bytes(total)))
        engine.run()
        assert state["dropped"] == 1
        assert client.fast_retransmits == 1
        assert bytes(received) == bytes(total)

    def test_recovery_deflates_cwnd_to_ssthresh(self):
        engine, wire, a, b = make_pair()
        received = bytearray()
        client, server = establish(engine, a, b,
                                   server_received=received.extend)
        total = 32 * 1024
        state = {"data_segs": 0, "dropped": 0}

        def drop_sixth_data(pkt, nh):
            if nh == b.my_ip and _is_data_segment(pkt):
                state["data_segs"] += 1
                if state["data_segs"] == 6 and not state["dropped"]:
                    state["dropped"] += 1
                    return True
            return False
        wire.drop_filter = drop_sixth_data

        deflations = []
        inflated = []

        def spy(tcb, orig, seg):
            if tcb is not client:
                return orig(tcb, seg)
            in_recovery = tcb.dupacks >= 3
            if in_recovery:
                inflated.append(tcb.cwnd)
            orig(tcb, seg)
            if in_recovery and tcb.dupacks == 0:
                deflations.append((tcb.cwnd, tcb.ssthresh))

        with spy_on("_process_ack", spy):
            a.run_kernel(lambda: client.send(bytes(total)))
            engine.run()
        assert client.fast_retransmits == 1
        # While in recovery the window was inflated past ssthresh...
        assert inflated and max(inflated) >= client.ssthresh
        # ...and the ack of the recovery point deflated it exactly.
        assert deflations
        cwnd_after, ssthresh_after = deflations[0]
        assert cwnd_after == ssthresh_after
        assert bytes(received) == bytes(total)


class TestHandshakeRetransmission:
    def test_lost_syn_ack_is_retransmitted_as_syn_ack(self):
        """A SYN_RCVD retransmit must resend the SYN|ACK, not data."""
        engine, wire, a, b = make_pair()
        state = {"to_client": 0}

        def drop_first_syn_ack(pkt, nh):
            if nh == a.my_ip:
                state["to_client"] += 1
                return state["to_client"] == 1
            return False
        wire.drop_filter = drop_first_syn_ack

        client, server = establish(engine, a, b)
        assert server.retransmits >= 1
        assert client.state == TcpState.ESTABLISHED
        assert server.state == TcpState.ESTABLISHED
