"""Tests for EPHEMERAL procedures (paper section 3.3, Figure 3)."""

import pytest

from repro.lang import (
    EphemeralViolation,
    ephemeral,
    is_blocking,
    is_ephemeral,
    may_block,
    register_safe,
)


# Module-level procedures used as call targets.

@ephemeral
def enqueue_like(value):
    """Stands in for the paper's Enqueue procedure."""
    return value


def not_ephemeral(value):
    """Stands in for the paper's NotEphemeral procedure."""
    return value


@may_block
def blocking_sleep():
    pass


safe_primitive = register_safe(lambda x: x)


class TestFigure3:
    """The exact scenarios of the paper's Figure 3."""

    def test_good_handler_compiles(self):
        @ephemeral
        def good_handler(m):
            enqueue_like(m)
        assert is_ephemeral(good_handler)

    def test_illegal_handler_rejected_at_declaration(self):
        """IllegalHandler calls NotEphemeral: 'won't compile'."""
        with pytest.raises(EphemeralViolation, match="not declared EPHEMERAL"):
            @ephemeral
            def illegal_handler(m):
                not_ephemeral(m)

    def test_rejected_handler_is_not_marked_ephemeral(self):
        def illegal(m):
            not_ephemeral(m)
        with pytest.raises(EphemeralViolation):
            ephemeral(illegal)
        assert not is_ephemeral(illegal)


class TestClosureProperty:
    def test_ephemeral_may_call_ephemeral(self):
        @ephemeral
        def outer(x):
            return enqueue_like(x)
        assert outer(5) == 5

    def test_ephemeral_may_call_registered_safe(self):
        @ephemeral
        def uses_safe(x):
            return safe_primitive(x)
        assert uses_safe(3) == 3

    def test_blocking_call_rejected(self):
        with pytest.raises(EphemeralViolation, match="MAY BLOCK"):
            @ephemeral
            def bad():
                blocking_sleep()

    def test_safe_builtins_allowed(self):
        @ephemeral
        def uses_builtins(n):
            return len(range(min(n, 10)))
        assert uses_builtins(5) == 5

    def test_unsafe_builtin_rejected(self):
        with pytest.raises(EphemeralViolation, match="not.*safe list"):
            @ephemeral
            def uses_open():
                open("/dev/null")

    def test_module_qualified_call_checked(self):
        import time

        with pytest.raises(EphemeralViolation):
            @ephemeral
            def uses_time():
                time.sleep(1)

    def test_recursion_allowed(self):
        @ephemeral
        def countdown(n):
            if n <= 0:
                return 0
            return countdown(n - 1)
        assert countdown(3) == 0

    def test_annotated_param_method_checked(self):
        class Queue:
            def blocking_get(self):
                pass
        Queue.blocking_get = may_block(Queue.blocking_get)

        with pytest.raises(EphemeralViolation, match="MAY BLOCK"):
            @ephemeral
            def handler(q: Queue):
                q.blocking_get()

    def test_nested_comprehension_scanned(self):
        with pytest.raises(EphemeralViolation):
            @ephemeral
            def uses_comprehension(items):
                return [not_ephemeral(i) for i in items]


class TestMarkers:
    def test_is_ephemeral_default_false(self):
        assert not is_ephemeral(not_ephemeral)

    def test_is_blocking(self):
        assert is_blocking(blocking_sleep)
        assert not is_blocking(enqueue_like)

    def test_ephemeral_rejects_non_function(self):
        with pytest.raises(EphemeralViolation):
            ephemeral("not a function")

    def test_kernel_primitives_are_blessed(self):
        """VIEW and the checksums are usable inside ephemeral handlers."""
        from repro.lang.view import VIEW
        from repro.net.checksum import internet_checksum
        from repro.net.headers import UDP_HEADER

        @ephemeral
        def handler(data):
            header = VIEW(data, UDP_HEADER)
            return internet_checksum(data) + header.length
        assert handler(bytes(8)) == 0xFFFF
