"""Tests for the assembled Plexus stack: Figure 1 live.

Runtime adaptation, extension linking, multiple protocol implementations,
read-only packet delivery -- the architecture-level claims.
"""

import pytest

from repro.core import AppExtension, Credential
from repro.lang import ReadOnlyViolation, ephemeral
from repro.spin import LinkError, compile_extension
from repro.sim import Signal


@ephemeral
def noop(m, off, src_ip, src_port, dst_ip, dst_port):
    pass


def kpath(bed, index, fn):
    bed.engine.run_process(bed.hosts[index].kernel_path(fn))
    bed.engine.run()


class TestGraphAssembly:
    def test_figure_one_nodes_present(self, spin_pair):
        graph = spin_pair.stacks[0].graph
        for name in ("ethernet", "arp", "ip", "udp", "tcp", "icmp"):
            assert name in graph.nodes

    def test_kernel_edges_installed(self, spin_pair):
        graph = spin_pair.stacks[0].graph
        # eth->ip, eth->arp, ip->udp, ip->tcp, ip->icmp, tcp->standard.
        assert graph.edge_count() == 6

    def test_raw_link_stack_has_no_arp(self):
        from repro.bench.testbed import build_testbed
        bed = build_testbed("spin", "t3")
        graph = bed.stacks[0].graph
        assert "arp" not in graph.nodes
        assert "link" in graph.nodes

    def test_invalid_modes_rejected(self, spin_pair):
        from repro.core.plexus import PlexusStack
        bed = spin_pair
        with pytest.raises(ValueError):
            PlexusStack(bed.hosts[0], bed.nics[0], 1, deliver_mode="magic")


class TestPacketsAreReadOnly:
    def test_handler_sees_frozen_packet(self, spin_pair):
        """Section 3.4: extensions share buffers but cannot modify them."""
        bed = spin_pair
        outcome = {}

        @ephemeral
        def prodding_handler(m, off, src_ip, src_port, dst_ip, dst_port):
            outcome["frozen"] = m.frozen
            try:
                m.writable_data()
                outcome["mutated"] = True
            except ReadOnlyViolation:
                outcome["mutated"] = False
        bed.stacks[1].udp_manager.bind(Credential("probe"), 7700,
                                       prodding_handler)
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7600, noop)
        kpath(bed, 0, lambda: sender.send(b"untouchable", bed.ip(1), 7700))
        assert outcome == {"frozen": True, "mutated": False}


class TestRuntimeAdaptation:
    def test_install_uninstall_while_traffic_flows(self, spin_pair):
        """Extensions 'come and go' without disturbing other traffic."""
        bed = spin_pair
        counts = {"stable": 0, "transient": 0}

        @ephemeral
        def stable(m, off, src_ip, src_port, dst_ip, dst_port):
            pass

        def make_handler(tag):
            @ephemeral
            def handler(m, off, src_ip, src_port, dst_ip, dst_port):
                counts[tag] += 1
            return handler

        manager = bed.stacks[1].udp_manager
        stable_ep = manager.bind(Credential("stable"), 7100,
                                 make_handler("stable"))
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7000, noop)

        kpath(bed, 0, lambda: sender.send(b"1", bed.ip(1), 7100))
        transient = manager.bind(Credential("transient"), 7200,
                                 make_handler("transient"))
        kpath(bed, 0, lambda: sender.send(b"2", bed.ip(1), 7200))
        kpath(bed, 0, lambda: sender.send(b"3", bed.ip(1), 7100))
        transient.close()
        kpath(bed, 0, lambda: sender.send(b"4", bed.ip(1), 7200))  # gone
        kpath(bed, 0, lambda: sender.send(b"5", bed.ip(1), 7100))
        assert counts == {"stable": 3, "transient": 1}
        del stable_ep

    def test_graph_returns_to_baseline_after_removal(self, spin_pair):
        bed = spin_pair
        graph = bed.stacks[0].graph
        baseline = graph.edge_count()
        endpoint = bed.stacks[0].udp_manager.bind(Credential("t"), 7100, noop)
        assert graph.edge_count() == baseline + 1
        endpoint.close()
        assert graph.edge_count() == baseline


class TestExtensionLinking:
    def test_app_domain_exposes_managers_only(self, spin_pair):
        domain = spin_pair.stacks[0].app_domain
        assert domain.can_resolve("UDP.Bind")
        assert domain.can_resolve("TCP.Listen")
        assert not domain.can_resolve("Dispatcher.Install")
        assert not domain.can_resolve("IP.SendCapability")

    def test_net_domain_is_wider(self, spin_pair):
        domain = spin_pair.stacks[0].net_domain
        assert domain.can_resolve("UDP.Bind")
        assert domain.can_resolve("IP.SendCapability")
        assert domain.can_resolve("Ethernet.ClaimEthertype")

    def test_extension_binds_through_imports(self, spin_pair):
        """The Figure 2 shape: a signed module installing a handler."""
        bed = spin_pair
        received = []

        @ephemeral
        def handler(m, off, src_ip, src_port, dst_ip, dst_port):
            received.append(bytes(m.to_bytes()[off:]))

        app = AppExtension(
            "EchoCounter",
            imports=["UDP.Bind"],
            init=lambda env, cred: [env["UDP.Bind"](cred, 7900, handler)])
        app.install(bed.stacks[1])

        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7000, noop)
        kpath(bed, 0, lambda: sender.send(b"to extension", bed.ip(1), 7900))
        assert received == [b"to extension"]

    def test_extension_uninstall_releases_everything(self, spin_pair):
        bed = spin_pair

        app = AppExtension(
            "Transient",
            imports=["UDP.Bind"],
            init=lambda env, cred: [env["UDP.Bind"](cred, 7901, noop)])
        app.install(bed.stacks[0])
        with pytest.raises(Exception):
            bed.stacks[0].udp_manager.bind(Credential("x"), 7901, noop)
        app.uninstall(bed.stacks[0])
        bed.stacks[0].udp_manager.bind(Credential("x"), 7901, noop)

    def test_overreaching_extension_rejected_at_link(self, spin_pair):
        """Paper sec. 2: referencing an unexported symbol fails the link."""
        bed = spin_pair
        rogue = compile_extension(
            "Rogue", ["Dispatcher.Install"], lambda env: None)
        with pytest.raises(LinkError, match="unresolved"):
            bed.stacks[0].install_extension(rogue)  # app domain

    def test_double_install_rejected(self, spin_pair):
        app = AppExtension("Once", imports=["UDP.Bind"],
                           init=lambda env, cred: [])
        app.install(spin_pair.stacks[0])
        with pytest.raises(RuntimeError):
            app.install(spin_pair.stacks[0])


class TestMultipleTcpImplementations:
    def test_special_and_standard_coexist(self, spin_pair):
        """Section 3.1: TCP-standard and TCP-special demux by guard."""
        bed = spin_pair
        server_stack = bed.stacks[1]
        special = server_stack.tcp_manager.install_implementation(
            Credential("special"), "special", ports=[9500])

        standard_conns, special_conns = [], []
        server_stack.tcp_manager.listen(
            Credential("std"), 9400, standard_conns.append)
        special.listen(9500, special_conns.append)

        def connect_both():
            bed.stacks[0].tcp_manager.connect(Credential("c1"), bed.ip(1), 9400)
            bed.stacks[0].tcp_manager.connect(Credential("c2"), bed.ip(1), 9500)
        kpath(bed, 0, connect_both)
        assert len(standard_conns) == 1
        assert len(special_conns) == 1
        # And the connections landed in different implementations.
        assert standard_conns[0].proto is server_stack.tcp
        assert special_conns[0].proto is special

    def test_standard_never_sees_special_ports(self, spin_pair):
        bed = spin_pair
        server_stack = bed.stacks[1]
        server_stack.tcp_manager.install_implementation(
            Credential("special"), "special", ports=[9500])
        before = server_stack.tcp.segments_in

        def connect():
            bed.stacks[0].tcp_manager.connect(Credential("c"), bed.ip(1), 9500)
        kpath(bed, 0, connect)
        # Segments for the special port bypassed the standard entirely.
        assert server_stack.tcp.segments_in == before


class TestEndToEnd:
    def test_udp_ping_pong(self, spin_pair):
        bed = spin_pair
        engine = bed.engine
        reply = Signal(engine)
        server_ep = None

        @ephemeral
        def echo(m, off, src_ip, src_port, dst_ip, dst_port):
            server_ep.send(bytes(m.to_bytes()[off:]), src_ip, src_port)
        server_ep = bed.stacks[1].udp_manager.bind(
            Credential("srv"), 7000, echo)
        got = []
        client_host = bed.hosts[0]

        @ephemeral
        def receive(m, off, src_ip, src_port, dst_ip, dst_port):
            got.append(bytes(m.to_bytes()[off:]))
            client_host.defer(reply.fire)
        client_ep = bed.stacks[0].udp_manager.bind(
            Credential("cli"), 7001, receive)

        def ping():
            waiter = reply.wait()
            yield from client_host.kernel_path(
                lambda: client_ep.send(b"marco", bed.ip(1), 7000))
            yield waiter
        engine.run_process(ping())
        assert got == [b"marco"]

    def test_tcp_echo_through_managers(self, spin_pair):
        bed = spin_pair
        engine = bed.engine
        got = Signal(engine)

        def on_accept(tcb):
            tcb.on_data = lambda data, t=tcb: t.send(data.upper())
        bed.stacks[1].tcp_manager.listen(Credential("srv"), 8200, on_accept)
        replies = []
        host = bed.hosts[0]

        def run():
            box = {}

            def connect():
                tcb = bed.stacks[0].tcp_manager.connect(
                    Credential("cli"), bed.ip(1), 8200)
                tcb.on_data = lambda data: (replies.append(data),
                                            host.defer(got.fire))
                tcb.on_established = lambda: tcb.send(b"shout")
                box["tcb"] = tcb
            waiter = got.wait()
            yield from host.kernel_path(connect)
            yield waiter
        engine.run_process(run())
        assert replies == [b"SHOUT"]
