"""Tests for the VIEW operator (paper section 3.2, Figure 2)."""

import pytest

from repro.lang import (
    Layout,
    ReadOnlyViolation,
    UINT16,
    UINT32,
    UINT8,
    VIEW,
    ViewError,
    readonly,
)
from repro.net.headers import ETHERNET_HEADER

ETH = ETHERNET_HEADER
SIMPLE = Layout("Simple", [("a", UINT16), ("b", UINT32)])


class TestConstruction:
    def test_requires_layout(self):
        with pytest.raises(ViewError, match="scalar"):
            VIEW(bytearray(10), "Ethernet.T")

    def test_buffer_too_small_rejected(self):
        with pytest.raises(ViewError, match="too small"):
            VIEW(bytearray(5), SIMPLE)

    def test_buffer_too_small_at_offset(self):
        with pytest.raises(ViewError):
            VIEW(bytearray(6), SIMPLE, offset=1)

    def test_negative_offset_rejected(self):
        with pytest.raises(ViewError):
            VIEW(bytearray(10), SIMPLE, offset=-1)

    def test_non_buffer_rejected(self):
        with pytest.raises(ViewError):
            VIEW([1, 2, 3], SIMPLE)

    def test_exact_size_accepted(self):
        view = VIEW(bytearray(6), SIMPLE)
        assert view.a == 0


class TestReads:
    def test_scalar_fields_decode(self):
        buf = bytearray(b"\x12\x34" + b"\xde\xad\xbe\xef")
        view = VIEW(buf, SIMPLE)
        assert view.a == 0x1234
        assert view.b == 0xDEADBEEF

    def test_offset_reads(self):
        buf = bytearray(b"\x00" * 3 + b"\x12\x34" + b"\x00" * 4)
        view = VIEW(buf, SIMPLE, offset=3)
        assert view.a == 0x1234

    def test_figure2_ethernet_idiom(self):
        """The exact guard idiom from Figure 2 of the paper."""
        frame = bytearray(64)
        frame[12:14] = b"\x08\x00"  # ETHERTYPE_IP
        header = VIEW(frame, ETH)
        assert header.type == 0x0800

    def test_array_field_indexing(self):
        frame = bytearray(range(20))
        header = VIEW(frame, ETH)
        assert list(header.dst) == [0, 1, 2, 3, 4, 5]
        assert header.src[0] == 6
        assert header.src[-1] == 11

    def test_array_out_of_range(self):
        header = VIEW(bytearray(20), ETH)
        with pytest.raises(IndexError):
            header.dst[6]

    def test_array_equality(self):
        frame = bytearray(20)
        frame[0:6] = b"\xff" * 6
        header = VIEW(frame, ETH)
        assert header.dst == b"\xff" * 6
        assert header.dst.tobytes() == b"\xff" * 6

    def test_unknown_field_rejected(self):
        view = VIEW(bytearray(6), SIMPLE)
        with pytest.raises(AttributeError, match="has no field"):
            _ = view.missing

    def test_nested_layout_access(self):
        inner = Layout("Inner", [("x", UINT16)])
        outer = Layout("Outer", [("pad", UINT8), ("body", inner)])
        buf = bytearray(b"\x00\xab\xcd")
        assert VIEW(buf, outer).body.x == 0xABCD

    def test_tobytes(self):
        buf = bytearray(b"\x01\x02\x03\x04\x05\x06\x07\x08")
        assert VIEW(buf, SIMPLE).tobytes() == bytes(buf[:6])


class TestZeroCopyAliasing:
    def test_buffer_writes_visible_through_view(self):
        buf = bytearray(6)
        view = VIEW(buf, SIMPLE)
        buf[0:2] = b"\x11\x22"
        assert view.a == 0x1122

    def test_view_writes_visible_in_buffer(self):
        buf = bytearray(6)
        view = VIEW(buf, SIMPLE)
        view.b = 0x01020304
        assert bytes(buf[2:6]) == b"\x01\x02\x03\x04"

    def test_array_writes_alias(self):
        frame = bytearray(20)
        header = VIEW(frame, ETH)
        header.dst[2] = 0x7F
        assert frame[2] == 0x7F

    def test_whole_array_assignment(self):
        frame = bytearray(20)
        header = VIEW(frame, ETH)
        header.src = b"\x01\x02\x03\x04\x05\x06"
        assert bytes(frame[6:12]) == b"\x01\x02\x03\x04\x05\x06"

    def test_wrong_size_array_assignment_rejected(self):
        header = VIEW(bytearray(20), ETH)
        with pytest.raises(ViewError):
            header.src = b"\x01\x02"


class TestReadOnlyViews:
    def test_view_over_bytes_is_readonly(self):
        view = VIEW(b"\x00" * 6, SIMPLE)
        with pytest.raises(ReadOnlyViolation):
            view.a = 1

    def test_view_over_readonly_buffer_rejects_writes(self):
        buf = readonly(bytearray(6))
        view = VIEW(buf, SIMPLE)
        assert view.a == 0
        with pytest.raises(ReadOnlyViolation, match="paper sec. 3.4"):
            view.a = 1

    def test_readonly_array_element_write_rejected(self):
        view = VIEW(readonly(bytearray(20)), ETH)
        with pytest.raises(ReadOnlyViolation):
            view.dst[0] = 1

    def test_readonly_view_reads_fine(self):
        buf = bytearray(20)
        buf[12:14] = b"\x08\x06"
        view = VIEW(readonly(buf), ETH)
        assert view.type == 0x0806
