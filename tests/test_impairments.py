"""The composable impairment model: bursty loss, reorder, dup, flaps...

Model-level tests pin down the seeded draw discipline (same (seed,
config) -> bit-identical fates) and each impairment's semantics; the
medium-level tests check the wiring into the three media and the
documented ``set_fault_model`` re-arm rules.
"""

import pytest

from repro.bench.testbed import build_testbed
from repro.hw.link import Frame, ImpairmentConfig, ImpairmentModel

from test_faults_and_trace import tcp_transfer


def _frame(n=64):
    return Frame(bytes(n), "aa:0", "aa:1")


def _run_model(model, frames=400, now=0.0):
    """Feed synthetic frames; returns the flat list of fates."""
    fates = []
    for _ in range(frames):
        fates.append(model.apply(now, _frame()))
    return fates


class TestConfig:
    def test_rates_validated(self):
        for field in ("loss_good", "loss_bad", "p_good_bad", "corrupt_rate",
                      "duplicate_rate", "reorder_rate"):
            with pytest.raises(ValueError):
                ImpairmentModel(ImpairmentConfig(**{field: 1.5}))

    def test_bandwidth_scale_validated(self):
        with pytest.raises(ValueError):
            ImpairmentConfig(bandwidth_scale=0.0).validate()
        with pytest.raises(ValueError):
            ImpairmentConfig(bandwidth_scale=1.5).validate()

    def test_flap_windows_validated(self):
        with pytest.raises(ValueError):
            ImpairmentConfig(flaps=((200.0, 100.0),)).validate()

    def test_dict_round_trip(self):
        config = ImpairmentConfig(loss_bad=0.3, p_good_bad=0.05,
                                  reorder_rate=0.1, flaps=((10.0, 20.0),))
        assert ImpairmentConfig.from_dict(config.to_dict()) == config


class TestModel:
    def test_same_seed_same_fates(self):
        config = ImpairmentConfig(loss_good=0.02, loss_bad=0.4,
                                  p_good_bad=0.1, p_bad_good=0.3,
                                  corrupt_rate=0.05, duplicate_rate=0.05,
                                  reorder_rate=0.1, jitter_us=100.0)
        one = _run_model(ImpairmentModel(config, seed=7))
        two = _run_model(ImpairmentModel(config, seed=7))
        fates1 = [[(d, f.data) for d, f in fate] for fate in one]
        fates2 = [[(d, f.data) for d, f in fate] for fate in two]
        assert fates1 == fates2

    def test_different_seed_different_fates(self):
        config = ImpairmentConfig(loss_good=0.2)
        one = ImpairmentModel(config, seed=1)
        two = ImpairmentModel(config, seed=2)
        pattern1 = [len(fate) for fate in _run_model(one)]
        pattern2 = [len(fate) for fate in _run_model(two)]
        assert pattern1 != pattern2

    def test_gilbert_elliott_loses_only_in_bad_state(self):
        config = ImpairmentConfig(loss_good=0.0, loss_bad=0.9,
                                  p_good_bad=0.05, p_bad_good=0.3)
        model = ImpairmentModel(config, seed=3)
        _run_model(model, frames=1000)
        assert model.lost > 0
        # Bursty: losses far exceed what independent loss at the same
        # long-run rate concentrated in GOOD state could produce.
        no_bad = ImpairmentModel(
            ImpairmentConfig(loss_good=0.0, loss_bad=0.9, p_good_bad=0.0),
            seed=3)
        _run_model(no_bad, frames=1000)
        assert no_bad.lost == 0

    def test_flap_window_drops_everything(self):
        config = ImpairmentConfig(flaps=((100.0, 200.0),))
        model = ImpairmentModel(config, seed=1)
        assert model.apply(150.0, _frame()) == []
        assert model.flap_dropped == 1
        fates = model.apply(250.0, _frame())
        assert len(fates) == 1
        assert model.flap_dropped == 1

    def test_duplicate_delivers_two_copies(self):
        config = ImpairmentConfig(duplicate_rate=0.99, duplicate_gap_us=333.0)
        model = ImpairmentModel(config, seed=5)
        fates = _run_model(model, frames=50)
        doubles = [fate for fate in fates if len(fate) == 2]
        assert model.duplicated == len(doubles) > 0
        for (d0, f0), (d1, f1) in doubles:
            assert d1 == d0 + 333.0
            assert f1.data == f0.data

    def test_reorder_holds_frames_back(self):
        config = ImpairmentConfig(reorder_rate=0.5, reorder_hold_us=750.0)
        model = ImpairmentModel(config, seed=9)
        fates = _run_model(model, frames=100)
        held = [fate[0][0] for fate in fates if fate and fate[0][0] > 0]
        assert model.reordered == len(held) > 0
        assert all(delay == 750.0 for delay in held)

    def test_jitter_bounded(self):
        config = ImpairmentConfig(jitter_us=100.0)
        model = ImpairmentModel(config, seed=11)
        fates = _run_model(model, frames=100)
        delays = [fate[0][0] for fate in fates]
        assert all(0.0 <= d < 100.0 for d in delays)
        assert any(d > 0.0 for d in delays)

    def test_corruption_flips_one_bit(self):
        config = ImpairmentConfig(corrupt_rate=0.99)
        model = ImpairmentModel(config, seed=13)
        original = _frame()
        fates = model.apply(0.0, original)
        assert model.corrupted == 1
        (_, corrupted), = fates
        diff = [(a ^ b) for a, b in zip(original.data, corrupted.data)]
        flipped = [d for d in diff if d]
        assert len(flipped) == 1
        assert bin(flipped[0]).count("1") == 1


class TestRearmSemantics:
    def test_seed_restarts_stream(self):
        bed = build_testbed("spin", "ethernet")
        medium = bed.medium
        medium.set_fault_model(loss_rate=0.1, seed=42)
        initial_state = medium._fault_rng.getstate()
        medium._fault_rng.random()  # advance the stream
        medium.set_fault_model(loss_rate=0.1, seed=42)
        assert medium._fault_rng.getstate() == initial_state

    def test_seed_none_keeps_stream(self):
        bed = build_testbed("spin", "ethernet")
        medium = bed.medium
        medium.set_fault_model(loss_rate=0.1, seed=42)
        medium._fault_rng.random()
        mid_state = medium._fault_rng.getstate()
        medium.set_fault_model(loss_rate=0.25, seed=None)
        assert medium._fault_rng.getstate() == mid_state
        assert medium._loss_rate == 0.25

    def test_seed_none_without_armed_model_raises(self):
        bed = build_testbed("spin", "ethernet")
        with pytest.raises(ValueError):
            bed.medium.set_fault_model(loss_rate=0.1, seed=None)


class TestMediumIntegration:
    def test_throttle_scales_wire_time(self):
        bed = build_testbed("spin", "ethernet")
        medium = bed.medium
        clean = medium._wire_time_us(1500)
        medium.set_impairments(ImpairmentConfig(bandwidth_scale=0.5))
        assert medium._wire_time_us(1500) == pytest.approx(2 * clean)
        medium.set_impairments(None)
        assert medium._wire_time_us(1500) == clean

    def test_tcp_survives_composed_impairments(self):
        bed = build_testbed("spin", "ethernet")
        model = bed.medium.set_impairments(ImpairmentConfig(
            loss_good=0.01, loss_bad=0.3, p_good_bad=0.05, p_bad_good=0.3,
            duplicate_rate=0.05, reorder_rate=0.05, jitter_us=50.0), seed=21)
        received = tcp_transfer(bed, total=40_000, deadline_us=20_000_000.0)
        assert received >= 40_000
        assert model.lost > 0
        assert model.duplicated > 0
        assert model.reordered > 0

    def test_frame_conservation_under_impairments(self):
        bed = build_testbed("spin", "t3")
        bed.medium.set_impairments(ImpairmentConfig(
            loss_good=0.05, duplicate_rate=0.05), seed=23)
        tcp_transfer(bed, total=20_000, deadline_us=20_000_000.0)
        medium = bed.medium
        assert medium.frames_delivered == medium.expected_deliveries()

    def test_link_flap_blackout_recovers(self):
        bed = build_testbed("spin", "ethernet")
        model = bed.medium.set_impairments(ImpairmentConfig(
            flaps=((10_000.0, 200_000.0),)))
        received = tcp_transfer(bed, total=40_000, deadline_us=20_000_000.0)
        assert received >= 40_000
        assert model.flap_dropped > 0

    def test_impairments_replayable_end_to_end(self):
        counters = []
        for _ in range(2):
            bed = build_testbed("spin", "ethernet")
            bed.medium.set_impairments(ImpairmentConfig(
                loss_good=0.02, loss_bad=0.4, p_good_bad=0.1,
                duplicate_rate=0.05, reorder_rate=0.05), seed=99)
            tcp_transfer(bed, total=20_000, deadline_us=20_000_000.0)
            counters.append((bed.medium.fault_counters(), bed.engine.now))
        assert counters[0] == counters[1]

    def test_ethernet_fanout_counts_all_listeners(self):
        bed = build_testbed("spin", "ethernet")
        assert bed.medium.delivery_fanout() == len(bed.medium.nics) - 1
