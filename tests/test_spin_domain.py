"""Tests for logical protection domains (paper section 2)."""

import pytest

from repro.spin import Domain, DomainError, Interface, UnresolvedSymbol


def make_ethernet_interface():
    return Interface("Ethernet", {
        "PacketRecv": object(),
        "InstallHandler": lambda *a: None,
    })


class TestInterface:
    def test_lookup(self):
        iface = make_ethernet_interface()
        assert callable(iface.lookup("InstallHandler"))

    def test_lookup_missing(self):
        with pytest.raises(KeyError):
            make_ethernet_interface().lookup("Nope")

    def test_export_and_contains(self):
        iface = Interface("Mbuf")
        iface.export("Alloc", lambda: None)
        assert "Alloc" in iface
        assert "Free" not in iface

    def test_qualified_names(self):
        iface = make_ethernet_interface()
        assert sorted(iface.qualified_names()) == [
            "Ethernet.InstallHandler", "Ethernet.PacketRecv"]

    def test_dotted_name_rejected(self):
        with pytest.raises(DomainError):
            Interface("A.B")

    def test_qualified_symbol_rejected(self):
        iface = Interface("A")
        with pytest.raises(DomainError):
            iface.export("B.C", 1)


class TestDomain:
    def test_resolve(self):
        domain = Domain.create("d", [make_ethernet_interface()])
        assert domain.resolve("Ethernet.PacketRecv") is not None

    def test_unresolved_interface(self):
        domain = Domain.create("d")
        with pytest.raises(UnresolvedSymbol, match="not visible"):
            domain.resolve("Ethernet.PacketRecv")

    def test_unresolved_symbol_in_known_interface(self):
        domain = Domain.create("d", [make_ethernet_interface()])
        with pytest.raises(UnresolvedSymbol):
            domain.resolve("Ethernet.Secret")

    def test_unqualified_name_rejected(self):
        domain = Domain.create("d")
        with pytest.raises(DomainError):
            domain.resolve("PacketRecv")

    def test_can_resolve(self):
        domain = Domain.create("d", [make_ethernet_interface()])
        assert domain.can_resolve("Ethernet.PacketRecv")
        assert not domain.can_resolve("VM.MapPage")

    def test_copy_confers_same_access(self):
        """Capabilities can be copied and passed around (paper sec. 2)."""
        domain = Domain.create("d", [make_ethernet_interface()])
        clone = domain.copy()
        assert clone.can_resolve("Ethernet.PacketRecv")

    def test_copy_is_shallow_snapshot(self):
        domain = Domain.create("d", [make_ethernet_interface()])
        clone = domain.copy()
        domain.export_interface(Interface("Extra", {"X": 1}))
        assert not clone.can_resolve("Extra.X")

    def test_combine_unions_visibility(self):
        a = Domain.create("a", [make_ethernet_interface()])
        b = Domain.create("b", [Interface("Mbuf", {"Alloc": 1})])
        both = a.combine(b)
        assert both.can_resolve("Ethernet.PacketRecv")
        assert both.can_resolve("Mbuf.Alloc")
        # Originals untouched.
        assert not a.can_resolve("Mbuf.Alloc")

    def test_combine_conflict_rejected(self):
        a = Domain.create("a", [Interface("X", {"v": 1})])
        b = Domain.create("b", [Interface("X", {"v": 2})])
        with pytest.raises(DomainError, match="conflicting"):
            a.combine(b)

    def test_reexport_same_interface_ok(self):
        iface = make_ethernet_interface()
        domain = Domain.create("d", [iface])
        domain.export_interface(iface)  # idempotent

    def test_conflicting_export_rejected(self):
        domain = Domain.create("d", [Interface("X", {"v": 1})])
        with pytest.raises(DomainError):
            domain.export_interface(Interface("X", {"v": 2}))

    def test_domains_are_unforgeable(self):
        """There is no registry: without the object, no access."""
        domain = Domain.create("secret", [make_ethernet_interface()])
        fresh = Domain.create("secret")  # same name, no visibility
        assert not fresh.can_resolve("Ethernet.PacketRecv")
        assert domain.can_resolve("Ethernet.PacketRecv")
