"""Tests for the discrete-event engine."""

import pytest

from repro.sim import Interrupt, Process, SimulationError


class TestClock:
    def test_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_timeout_advances_clock(self, engine):
        engine.timeout(25.0)
        engine.run()
        assert engine.now == 25.0

    def test_run_until_stops_exactly(self, engine):
        engine.timeout(100.0)
        engine.run(until=40.0)
        assert engine.now == 40.0

    def test_run_until_past_leaves_clock_at_until(self, engine):
        engine.timeout(10.0)
        engine.run(until=50.0)
        assert engine.now == 50.0

    def test_run_until_backwards_rejected(self, engine):
        engine.timeout(10.0)
        engine.run()
        with pytest.raises(ValueError):
            engine.run(until=5.0)

    def test_negative_timeout_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.timeout(-1.0)

    def test_step_with_empty_heap_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.step()


class TestEvent:
    def test_succeed_delivers_value(self, engine):
        event = engine.event()
        seen = []
        event.callbacks.append(lambda evt: seen.append(evt.value))
        event.succeed("hello")
        engine.run()
        assert seen == ["hello"]

    def test_succeed_twice_rejected(self, engine):
        event = engine.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self, engine):
        event = engine.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_value_before_trigger_rejected(self, engine):
        event = engine.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_failed_event_value_raises(self, engine):
        event = engine.event()
        event.fail(RuntimeError("boom"))
        engine.run()
        with pytest.raises(RuntimeError):
            _ = event.value

    def test_delay_schedules_in_future(self, engine):
        event = engine.event()
        times = []
        event.callbacks.append(lambda evt: times.append(engine.now))
        event.succeed(delay=12.5)
        engine.run()
        assert times == [12.5]


class TestProcess:
    def test_return_value(self, engine):
        def proc():
            yield engine.timeout(1.0)
            return 99
        assert engine.run_process(proc()) == 99

    def test_sequential_timeouts_accumulate(self, engine):
        def proc():
            yield engine.timeout(5.0)
            yield engine.timeout(7.0)
            return engine.now
        assert engine.run_process(proc()) == 12.0

    def test_exception_propagates(self, engine):
        def proc():
            yield engine.timeout(1.0)
            raise ValueError("inside process")
        with pytest.raises(ValueError, match="inside process"):
            engine.run_process(proc())

    def test_yielding_non_event_rejected(self, engine):
        def proc():
            yield 42
        with pytest.raises(SimulationError, match="must yield Event"):
            engine.run_process(proc())

    def test_requires_generator(self, engine):
        with pytest.raises(TypeError):
            Process(engine, lambda: None)

    def test_waiting_on_already_processed_event(self, engine):
        done = engine.event()
        done.succeed("early")
        engine.run()
        assert done.processed

        def proc():
            value = yield done
            return value
        assert engine.run_process(proc()) == "early"

    def test_two_processes_interleave_deterministically(self, engine):
        order = []

        def a():
            yield engine.timeout(1.0)
            order.append("a1")
            yield engine.timeout(2.0)
            order.append("a2")

        def b():
            yield engine.timeout(2.0)
            order.append("b1")
            yield engine.timeout(2.0)
            order.append("b2")
        engine.process(a())
        engine.process(b())
        engine.run()
        assert order == ["a1", "b1", "a2", "b2"]

    def test_fifo_order_for_simultaneous_events(self, engine):
        order = []
        for tag in ("x", "y", "z"):
            engine.timeout(5.0).callbacks.append(
                lambda evt, tag=tag: order.append(tag))
        engine.run()
        assert order == ["x", "y", "z"]

    def test_deadlock_detected(self, engine):
        def proc():
            yield engine.event()  # never fires
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run_process(proc())

    def test_process_waits_on_another_process(self, engine):
        def worker():
            yield engine.timeout(10.0)
            return "done"

        def waiter():
            result = yield engine.process(worker())
            return result, engine.now
        assert engine.run_process(waiter()) == ("done", 10.0)

    def test_failed_event_throws_into_process(self, engine):
        event = engine.event()
        event.fail(KeyError("nope"))

        def proc():
            try:
                yield event
            except KeyError:
                return "caught"
        assert engine.run_process(proc()) == "caught"


class TestInterrupt:
    def test_interrupt_resumes_with_cause(self, engine):
        def proc():
            try:
                yield engine.timeout(100.0)
            except Interrupt as exc:
                return exc.cause
        process = engine.process(proc())

        def interrupter():
            yield engine.timeout(5.0)
            process.interrupt("time-limit")
        engine.process(interrupter())
        engine.run()
        assert process.value == "time-limit"
        assert engine.now == pytest.approx(100.0)  # stale timeout still fires

    def test_interrupt_finished_process_rejected(self, engine):
        def proc():
            yield engine.timeout(1.0)
        process = engine.process(proc())
        engine.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_interrupted_process_does_not_double_resume(self, engine):
        resumes = []

        def proc():
            try:
                yield engine.timeout(50.0)
            except Interrupt:
                resumes.append("interrupted")
                yield engine.timeout(1.0)
                resumes.append("after")
        process = engine.process(proc())

        def interrupter():
            yield engine.timeout(5.0)
            process.interrupt()
        engine.process(interrupter())
        engine.run()
        assert resumes == ["interrupted", "after"]


class TestCombinators:
    def test_any_of_first_wins(self, engine):
        fast = engine.timeout(1.0, value="fast")
        slow = engine.timeout(10.0, value="slow")

        def proc():
            result = yield engine.any_of([fast, slow])
            return list(result.values())
        assert engine.run_process(proc()) == ["fast"]

    def test_any_of_empty_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.any_of([])

    def test_all_of_waits_for_all(self, engine):
        events = [engine.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]

        def proc():
            result = yield engine.all_of(events)
            return engine.now, sorted(result.values())
        assert engine.run_process(proc()) == (3.0, [1.0, 2.0, 3.0])

    def test_all_of_already_processed(self, engine):
        done = engine.timeout(0.0, value="x")
        engine.run()

        def proc():
            result = yield engine.all_of([done])
            return result
        assert engine.run_process(proc()) == {done: "x"}

    def test_all_of_failure_propagates(self, engine):
        bad = engine.event()
        bad.fail(RuntimeError("nope"))
        good = engine.timeout(5.0)

        def proc():
            try:
                yield engine.all_of([bad, good])
            except RuntimeError:
                return "failed"
        assert engine.run_process(proc()) == "failed"
