"""Tests for IP routing and the multi-homed router host."""

import pytest

from repro.core import Credential, PlexusStack
from repro.hw import EthernetSegment, LanceEthernet
from repro.lang import ephemeral
from repro.net import Router, RouterInterface, ip_aton, mac_aton
from repro.net.ip import IpProto
from repro.sim import Engine, Signal
from repro.spin import SpinKernel

NET_A = ip_aton("10.1.0.0")
NET_B = ip_aton("10.2.0.0")


@ephemeral
def _noop(m, off, src_ip, src_port, dst_ip, dst_port):
    pass


class TestRouteTable:
    def _stack(self):
        class FakeAdapter:
            mtu = 1500

            def __init__(self):
                self.sent = []

            def send(self, m, next_hop):
                self.sent.append((m.to_bytes(), next_hop))
        engine = Engine()
        kernel = SpinKernel(engine, "r")
        adapter = FakeAdapter()
        ip = IpProto(kernel, ip_aton("10.1.0.1"), adapter)
        return kernel, ip, adapter, FakeAdapter

    def test_default_is_on_link(self):
        _k, ip, adapter, _F = self._stack()
        chosen, next_hop = ip.route_for(ip_aton("10.9.9.9"))
        assert chosen is adapter
        assert next_hop == ip_aton("10.9.9.9")

    def test_gateway_route(self):
        _k, ip, adapter, _F = self._stack()
        ip.add_route(NET_B, 16, gateway=ip_aton("10.1.0.254"))
        chosen, next_hop = ip.route_for(ip_aton("10.2.3.4"))
        assert chosen is adapter
        assert next_hop == ip_aton("10.1.0.254")

    def test_longest_prefix_wins(self):
        _k, ip, adapter, FakeAdapter = self._stack()
        other = FakeAdapter()
        ip.add_route(NET_B, 16, gateway=ip_aton("10.1.0.254"))
        ip.add_route(ip_aton("10.2.5.0"), 24, adapter=other)
        chosen, next_hop = ip.route_for(ip_aton("10.2.5.9"))
        assert chosen is other
        assert next_hop == ip_aton("10.2.5.9")
        chosen, _hop = ip.route_for(ip_aton("10.2.6.9"))
        assert chosen is adapter

    def test_invalid_prefix_rejected(self):
        _k, ip, _a, _F = self._stack()
        with pytest.raises(ValueError):
            ip.add_route(NET_B, 40)


def build_routed_world():
    """Two Ethernet segments joined by a router; a Plexus host on each."""
    engine = Engine()
    seg_a = EthernetSegment(engine)
    seg_b = EthernetSegment(engine)

    def plexus_host(name, segment, address, index):
        kernel = SpinKernel(engine, name)
        nic = LanceEthernet(engine, "ln0",
                            mac_aton("02:00:00:00:0%d:01" % index))
        kernel.add_nic(nic)
        segment.attach(nic)
        stack = PlexusStack(kernel, nic, address)
        return kernel, nic, stack

    host_a = plexus_host("host-a", seg_a, ip_aton("10.1.0.10"), 1)
    host_b = plexus_host("host-b", seg_b, ip_aton("10.2.0.10"), 2)

    router_kernel = SpinKernel(engine, "router")
    nic_ra = LanceEthernet(engine, "ln0", mac_aton("02:00:00:00:01:fe"))
    nic_rb = LanceEthernet(engine, "ln1", mac_aton("02:00:00:00:02:fe"))
    router_kernel.add_nic(nic_ra)
    router_kernel.add_nic(nic_rb)
    seg_a.attach(nic_ra)
    seg_b.attach(nic_rb)
    router = Router(router_kernel, [
        RouterInterface(nic_ra, ip_aton("10.1.0.1")),
        RouterInterface(nic_rb, ip_aton("10.2.0.1")),
    ])
    router.add_route(NET_A, 16, interface_index=0)
    router.add_route(NET_B, 16, interface_index=1)

    # End hosts: remote subnet via the router on their segment.
    host_a[2].ip.add_route(NET_B, 16, gateway=ip_aton("10.1.0.1"))
    host_b[2].ip.add_route(NET_A, 16, gateway=ip_aton("10.2.0.1"))
    return engine, host_a, host_b, router


class TestRouterForwarding:
    def test_udp_across_subnets(self):
        engine, (ka, _na, sa), (kb, _nb, sb), router = build_routed_world()
        got = []

        @ephemeral
        def handler(m, off, src_ip, src_port, dst_ip, dst_port):
            got.append((bytes(m.to_bytes()[off:]), src_ip))
        sb.udp_manager.bind(Credential("srv"), 7000, handler)
        sender = sa.udp_manager.bind(Credential("cli"), 7001, _noop)
        engine.run_process(ka.kernel_path(
            lambda: sender.send(b"across the router", ip_aton("10.2.0.10"),
                                7000)))
        engine.run()
        assert got == [(b"across the router", ip_aton("10.1.0.10"))]
        assert router.forwarded >= 1

    def test_tcp_across_subnets(self):
        engine, (ka, _na, sa), (kb, _nb, sb), router = build_routed_world()
        got = []

        def on_accept(tcb):
            tcb.on_data = lambda data, t=tcb: t.send(data[::-1])
        sb.tcp_manager.listen(Credential("srv"), 9000, on_accept)
        replies = []
        done = Signal(engine)

        def run():
            def connect():
                tcb = sa.tcp_manager.connect(Credential("cli"),
                                             ip_aton("10.2.0.10"), 9000)
                tcb.on_data = lambda data: (replies.append(data),
                                            ka.defer(done.fire))
                tcb.on_established = lambda: tcb.send(b"forward")
            waiter = done.wait()
            yield from ka.kernel_path(connect)
            yield waiter
        engine.run_process(run())
        assert replies == [b"drawrof"]
        assert router.forwarded >= 3  # SYN, ACKs, data each way

    def test_router_decrements_ttl(self):
        engine, (ka, _na, sa), (kb, _nb, sb), router = build_routed_world()
        seen_ttl = []

        @ephemeral
        def handler(proto, m, off, src, dst):
            from repro.lang.view import VIEW
            from repro.net.headers import IP_HEADER
            header = VIEW(m.data, IP_HEADER, offset=off - 20)
            seen_ttl.append(header.ttl)
        sb.ip_manager.claim_protocol(Credential("probe"), 99, handler)
        send = sa.ip_manager.send_capability(Credential("cli"))

        def work():
            m = ka.mbufs.from_bytes(b"ttl probe", leading_space=64)
            send(m, ip_aton("10.2.0.10"), 99)
        engine.run_process(ka.kernel_path(work))
        engine.run()
        assert seen_ttl == [63]  # started at 64, one hop

    def test_ttl_expiry_generates_icmp(self):
        engine, (ka, _na, sa), (kb, _nb, sb), router = build_routed_world()
        exceeded = []
        sa.icmp.on_time_exceeded = lambda quote: exceeded.append(quote)

        def work():
            m = ka.mbufs.from_bytes(b"dying packet", leading_space=64)
            sa.ip.output(m, ip_aton("10.2.0.10"), 99, ttl=1)
        engine.run_process(ka.kernel_path(work))
        engine.run()
        assert router.ip.ttl_expired == 1
        assert len(exceeded) == 1

    def test_router_answers_ping(self):
        engine, (ka, _na, sa), _b, router = build_routed_world()
        replies = []
        sa.icmp.on_echo_reply = (
            lambda ident, seq, payload, src: replies.append(src))
        engine.run_process(ka.kernel_path(
            lambda: sa.icmp.send_echo_request(ip_aton("10.1.0.1"), 1, 1)))
        engine.run()
        assert replies == [ip_aton("10.1.0.1")]

    def test_requires_two_interfaces(self, engine):
        kernel = SpinKernel(engine, "r")
        nic = LanceEthernet(engine, "ln0", b"\x02" + b"\x00" * 5)
        kernel.add_nic(nic)
        with pytest.raises(ValueError):
            Router(kernel, [RouterInterface(nic, ip_aton("10.0.0.1"))])

    def test_mixed_media_router_fragments_toward_small_mtu(self):
        """A T3 host (MTU 4470) sends a big datagram to an Ethernet host
        (MTU 1500): the router fragments in transit, the receiver
        reassembles."""
        from repro.hw import PointToPointLink, T3Nic
        engine = Engine()
        seg = EthernetSegment(engine)
        t3_link = PointToPointLink(engine, bandwidth_bps=45e6)

        # Ethernet host.
        kernel_e = SpinKernel(engine, "eth-host")
        nic_e = LanceEthernet(engine, "ln0", mac_aton("02:00:00:00:01:01"))
        kernel_e.add_nic(nic_e)
        seg.attach(nic_e)
        stack_e = PlexusStack(kernel_e, nic_e, ip_aton("10.1.0.10"))
        stack_e.ip.add_route(NET_B, 16, gateway=ip_aton("10.1.0.1"))

        # T3 host.
        kernel_t = SpinKernel(engine, "t3-host")
        nic_t = T3Nic(engine, "t3", "t3-host-addr")
        kernel_t.add_nic(nic_t)
        t3_link.attach(nic_t)
        stack_t = PlexusStack(
            kernel_t, nic_t, ip_aton("10.2.0.10"), link="raw",
            neighbors={ip_aton("10.2.0.1"): "t3-router-addr"})
        stack_t.ip.add_route(NET_A, 16, gateway=ip_aton("10.2.0.1"))

        # The router: one Ethernet leg, one T3 leg.
        kernel_r = SpinKernel(engine, "router")
        nic_ra = LanceEthernet(engine, "ln0", mac_aton("02:00:00:00:01:fe"))
        nic_rb = T3Nic(engine, "t3", "t3-router-addr")
        kernel_r.add_nic(nic_ra)
        kernel_r.add_nic(nic_rb)
        seg.attach(nic_ra)
        t3_link.attach(nic_rb)
        router = Router(kernel_r, [
            RouterInterface(nic_ra, ip_aton("10.1.0.1")),
            RouterInterface(nic_rb, ip_aton("10.2.0.1"), link="raw",
                            neighbors={ip_aton("10.2.0.10"): "t3-host-addr"}),
        ])
        router.add_route(NET_A, 16, interface_index=0)
        router.add_route(NET_B, 16, interface_index=1)

        got = []

        @ephemeral
        def handler(m, off, src_ip, src_port, dst_ip, dst_port):
            got.append(m.length() - off)
        stack_e.udp_manager.bind(Credential("srv"), 7000, handler)
        sender = stack_t.udp_manager.bind(Credential("cli"), 7001, _noop)

        # 4000-byte datagram: one T3 frame, three Ethernet fragments.
        engine.run_process(kernel_t.kernel_path(
            lambda: sender.send(bytes(4000), ip_aton("10.1.0.10"), 7000)))
        engine.run()
        assert got == [4000]
        assert router.ip.fragments_out >= 3  # fragmented in transit
        assert stack_e.ip.reassembled == 1

    def test_fragmentation_toward_smaller_mtu(self):
        """A big datagram forwarded onto the same-MTU segment still
        arrives whole (router emits what fits)."""
        engine, (ka, _na, sa), (kb, _nb, sb), router = build_routed_world()
        got = []

        @ephemeral
        def handler(m, off, src_ip, src_port, dst_ip, dst_port):
            got.append(m.length() - off)
        sb.udp_manager.bind(Credential("srv"), 7000, handler)
        sender = sa.udp_manager.bind(Credential("cli"), 7001, _noop)
        engine.run_process(ka.kernel_path(
            lambda: sender.send(bytes(4000), ip_aton("10.2.0.10"), 7000)))
        engine.run()
        assert got == [4000]
        assert sb.ip.reassembled == 1  # fragmented by A, carried, rebuilt
