"""Tests for the protocol managers: the paper's protection policy.

Every test here corresponds to a claim in sections 3.1-3.3: spoofing is
prevented by source overwrite (or verify), snooping by manager-built
guards and port ownership, interrupt-level handlers must be EPHEMERAL,
and privileged operations demand a privileged credential.
"""

import pytest

from repro.core import AccessError, Credential, PortSpace, SpoofingError
from repro.lang import ephemeral
from repro.net.headers import IPPROTO_TCP, ip_aton


@ephemeral
def noop_handler(m, off, src_ip, src_port, dst_ip, dst_port):
    pass


def kpath(bed, index, fn):
    bed.engine.run_process(bed.hosts[index].kernel_path(fn))
    bed.engine.run()


class TestPortSpace:
    def test_claim_and_release(self):
        space = PortSpace("port")
        alice = Credential("alice")
        space.claim(80, alice)
        assert space.owner(80) is alice
        space.release(80, alice)
        assert space.owner(80) is None

    def test_foreign_claim_rejected(self):
        space = PortSpace("port")
        alice, bob = Credential("alice"), Credential("bob")
        space.claim(80, alice)
        with pytest.raises(AccessError, match="owned by alice"):
            space.claim(80, bob)

    def test_reserved_needs_privilege(self):
        space = PortSpace("port", reserved=[25])
        with pytest.raises(AccessError, match="reserved"):
            space.claim(25, Credential("user"))
        space.claim(25, Credential("root", privileged=True))

    def test_reclaim_by_owner_ok(self):
        space = PortSpace("port")
        alice = Credential("alice")
        space.claim(80, alice)
        space.claim(80, alice)  # idempotent for the owner

    def test_foreign_release_rejected(self):
        space = PortSpace("port")
        alice, bob = Credential("alice"), Credential("bob")
        space.claim(80, alice)
        with pytest.raises(AccessError):
            space.release(80, bob)

    def test_privileged_release_allowed(self):
        space = PortSpace("port")
        space.claim(80, Credential("alice"))
        space.release(80, Credential("root", privileged=True))


class TestUdpManagerPolicy:
    def test_bind_and_receive_only_own_port(self, spin_pair):
        """Anti-snooping: a handler never sees another port's traffic."""
        bed = spin_pair
        seen = {"mine": [], "other": []}

        @ephemeral
        def mine(m, off, src_ip, src_port, dst_ip, dst_port):
            seen["mine"].append(dst_port)

        @ephemeral
        def other(m, off, src_ip, src_port, dst_ip, dst_port):
            seen["other"].append(dst_port)
        manager = bed.stacks[1].udp_manager
        manager.bind(Credential("a"), 7100, mine)
        manager.bind(Credential("b"), 7200, other)
        sender = bed.stacks[0].udp_manager.bind(
            Credential("c"), 7300, noop_handler)
        kpath(bed, 0, lambda: sender.send(b"x", bed.ip(1), 7100))
        assert seen["mine"] == [7100]
        assert seen["other"] == []

    def test_port_ownership_enforced(self, spin_pair):
        manager = spin_pair.stacks[0].udp_manager
        manager.bind(Credential("a"), 7100, noop_handler)
        with pytest.raises(AccessError):
            manager.bind(Credential("b"), 7100, noop_handler)

    def test_close_releases_port(self, spin_pair):
        manager = spin_pair.stacks[0].udp_manager
        endpoint = manager.bind(Credential("a"), 7100, noop_handler)
        endpoint.close()
        manager.bind(Credential("b"), 7100, noop_handler)  # now free

    def test_send_overwrites_source(self, spin_pair):
        """Anti-spoofing: the manager stamps the owned source fields."""
        bed = spin_pair
        seen = []

        @ephemeral
        def catcher(m, off, src_ip, src_port, dst_ip, dst_port):
            seen.append((src_ip, src_port))
        bed.stacks[1].udp_manager.bind(Credential("srv"), 7500, catcher)
        endpoint = bed.stacks[0].udp_manager.bind(
            Credential("cli"), 7400, noop_handler)
        kpath(bed, 0, lambda: endpoint.send(b"x", bed.ip(1), 7500))
        # The wire carries the endpoint's identity, whatever the caller
        # might have wished.
        assert seen == [(bed.ip(0), 7400)]

    def test_verify_policy_raises_on_spoof(self, spin_pair):
        bed = spin_pair
        endpoint = bed.stacks[0].udp_manager.bind(
            Credential("cli"), 7400, noop_handler, spoof_policy="verify")

        def attempt():
            endpoint.send(b"x", bed.ip(1), 7500, claimed_src_port=9999)
        with pytest.raises(SpoofingError):
            kpath(bed, 0, attempt)

    def test_closed_endpoint_cannot_send(self, spin_pair):
        bed = spin_pair
        endpoint = bed.stacks[0].udp_manager.bind(
            Credential("cli"), 7400, noop_handler)
        endpoint.close()
        with pytest.raises(AccessError):
            kpath(bed, 0, lambda: endpoint.send(b"x", bed.ip(1), 7500))

    def test_inline_handler_must_be_ephemeral(self, spin_pair):
        def plain_handler(m, off, src_ip, src_port, dst_ip, dst_port):
            pass
        manager = spin_pair.stacks[0].udp_manager
        with pytest.raises(AccessError, match="EPHEMERAL"):
            manager.bind(Credential("a"), 7100, plain_handler, mode="inline")

    def test_thread_handler_need_not_be_ephemeral(self, spin_pair):
        def plain_handler(m, off, src_ip, src_port, dst_ip, dst_port):
            pass
        manager = spin_pair.stacks[0].udp_manager
        manager.bind(Credential("a"), 7100, plain_handler, mode="thread")

    def test_reserved_low_ports(self, spin_pair):
        manager = spin_pair.stacks[0].udp_manager
        with pytest.raises(AccessError, match="reserved"):
            manager.bind(Credential("user"), 53, noop_handler)
        manager.bind(Credential("root", privileged=True), 53, noop_handler)


class TestEthernetManagerPolicy:
    def test_reserved_ethertypes(self, spin_pair):
        manager = spin_pair.stacks[0].ethernet_manager

        @ephemeral
        def handler(nic, m):
            pass
        with pytest.raises(AccessError, match="reserved"):
            manager.claim_ethertype(Credential("user"), 0x0800, handler)

    def test_claim_custom_ethertype(self, spin_pair):
        manager = spin_pair.stacks[0].ethernet_manager

        @ephemeral
        def handler(nic, m):
            pass
        install = manager.claim_ethertype(Credential("am"), 0x88B5, handler)
        assert install.handle.installed
        install.uninstall()
        # Released: another principal may claim it now.
        manager.claim_ethertype(Credential("other"), 0x88B5, handler)

    def test_send_capability_requires_ownership(self, spin_pair):
        manager = spin_pair.stacks[0].ethernet_manager
        with pytest.raises(AccessError, match="does not own"):
            manager.send_capability(Credential("nobody"), 0x88B5)


class TestIpManagerPolicy:
    def test_claim_ip_protocol(self, spin_pair):
        bed = spin_pair
        seen = []

        @ephemeral
        def handler(proto, m, off, src, dst):
            seen.append(proto)
        bed.stacks[1].ip_manager.claim_protocol(
            Credential("custom"), 99, handler)
        send = bed.stacks[0].ip_manager.send_capability(Credential("cli"))

        def work():
            m = bed.hosts[0].mbufs.from_bytes(b"custom proto", leading_space=64)
            send(m, bed.ip(1), 99)
        kpath(bed, 0, work)
        assert seen == [99]

    def test_reserved_protocols(self, spin_pair):
        manager = spin_pair.stacks[0].ip_manager

        @ephemeral
        def handler(proto, m, off, src, dst):
            pass
        with pytest.raises(AccessError):
            manager.claim_protocol(Credential("user"), IPPROTO_TCP, handler)

    def test_preserve_source_needs_privilege(self, spin_pair):
        manager = spin_pair.stacks[0].ip_manager
        with pytest.raises(AccessError, match="spoofing"):
            manager.send_capability(Credential("user"), preserve_source=True)
        manager.send_capability(Credential("root", privileged=True),
                                preserve_source=True)

    def test_unprivileged_ip_send_stamps_own_source(self, spin_pair):
        bed = spin_pair
        seen = []

        @ephemeral
        def handler(proto, m, off, src, dst):
            seen.append(src)
        bed.stacks[1].ip_manager.claim_protocol(Credential("x"), 100, handler)
        send = bed.stacks[0].ip_manager.send_capability(Credential("cli"))

        def work():
            m = bed.hosts[0].mbufs.from_bytes(b"x", leading_space=64)
            send(m, bed.ip(1), 100, src=ip_aton("99.99.99.99"))  # ignored
        kpath(bed, 0, work)
        assert seen == [bed.ip(0)]

    def test_redirect_capability_needs_privilege(self, spin_pair):
        manager = spin_pair.stacks[0].ip_manager
        with pytest.raises(AccessError):
            manager.link_redirect_capability(Credential("user"))

    def test_alias_capability_needs_privilege(self, spin_pair):
        manager = spin_pair.stacks[0].ip_manager
        with pytest.raises(AccessError):
            manager.alias_capability(Credential("user"))

    def test_port_redirect_claims_transport_port(self, spin_pair):
        bed = spin_pair
        manager = bed.stacks[0].ip_manager

        @ephemeral
        def handler(proto, m, off, src, dst):
            pass
        manager.claim_port_redirect(Credential("fwd"), IPPROTO_TCP, 8080,
                                    handler)
        # The TCP manager now refuses that port.
        with pytest.raises(AccessError):
            bed.stacks[0].tcp_manager.listen(Credential("web"), 8080,
                                             lambda tcb: None)

    def test_redirect_uninstall_restores_port(self, spin_pair):
        bed = spin_pair
        manager = bed.stacks[0].ip_manager

        @ephemeral
        def handler(proto, m, off, src, dst):
            pass
        install = manager.claim_port_redirect(
            Credential("fwd"), IPPROTO_TCP, 8080, handler)
        install.uninstall()
        bed.stacks[0].tcp_manager.listen(Credential("web"), 8080,
                                         lambda tcb: None)


class TestTcpManagerPolicy:
    def test_listen_claims_port(self, spin_pair):
        manager = spin_pair.stacks[0].tcp_manager
        manager.listen(Credential("a"), 8000, lambda tcb: None)
        with pytest.raises(AccessError):
            manager.listen(Credential("b"), 8000, lambda tcb: None)

    def test_listener_close_releases(self, spin_pair):
        manager = spin_pair.stacks[0].tcp_manager
        handle = manager.listen(Credential("a"), 8000, lambda tcb: None)
        handle.close()
        manager.listen(Credential("b"), 8000, lambda tcb: None)

    def test_special_implementation_claims_ports(self, spin_pair):
        bed = spin_pair
        manager = bed.stacks[0].tcp_manager
        special = manager.install_implementation(
            Credential("special"), "tcp-special", ports=[9100, 9101])
        assert special is not manager.standard
        assert manager.special_ports == {9100, 9101}
        with pytest.raises(AccessError):
            manager.listen(Credential("x"), 9100, lambda tcb: None)
