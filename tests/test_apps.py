"""Tests for the section 5 applications: video, forwarder, active
messages, HTTP."""

import pytest

from repro.apps import (
    ActiveMessages,
    BackendService,
    PlexusForwarder,
    SpinHttpClient,
    SpinHttpServer,
    SpinVideoClient,
    SpinVideoServer,
    UnixHttpServer,
    UnixVideoServer,
    unix_http_get,
)
from repro.apps.video import VIDEO_PORT_BASE
from repro.bench.testbed import build_testbed
from repro.core import Credential
from repro.lang import ephemeral
from repro.sim import Signal


class TestActiveMessages:
    def test_remote_handler_invoked(self, spin_pair):
        bed = spin_pair
        am_a = ActiveMessages(bed.stacks[0], name="am-a")
        am_b = ActiveMessages(bed.stacks[1], name="am-b")
        seen = []

        @ephemeral
        def handler(seq, arg, index):
            seen.append((seq, arg, index))
        am_b.register(3, handler)
        bed.engine.run_process(bed.hosts[0].kernel_path(
            lambda: am_a.send(bed.nics[1].address, 3, arg=0xABCD)))
        bed.engine.run()
        assert seen == [(1, 0xABCD, 3)]
        assert am_b.messages_received == 1

    def test_unregistered_index_ignored(self, spin_pair):
        bed = spin_pair
        am_a = ActiveMessages(bed.stacks[0], name="am-a")
        am_b = ActiveMessages(bed.stacks[1], name="am-b")
        bed.engine.run_process(bed.hosts[0].kernel_path(
            lambda: am_a.send(bed.nics[1].address, 42)))
        bed.engine.run()
        assert am_b.messages_received == 1  # frame arrived, no target

    def test_non_ephemeral_handler_rejected(self, spin_pair):
        am = ActiveMessages(spin_pair.stacks[0])

        def sloppy(seq, arg, index):
            pass
        with pytest.raises(ValueError, match="ephemeral"):
            am.register(1, sloppy)

    def test_requires_ethernet(self):
        bed = build_testbed("spin", "t3")
        with pytest.raises(ValueError, match="Ethernet"):
            ActiveMessages(bed.stacks[0])

    def test_remove_releases_ethertype(self, spin_pair):
        am = ActiveMessages(spin_pair.stacks[0], name="first")
        am.remove()
        ActiveMessages(spin_pair.stacks[0], name="second")  # same ethertype


class TestVideo:
    def test_spin_server_streams_frames(self):
        bed = build_testbed("spin", "t3")
        client = SpinVideoClient(bed.stacks[1], frame_bytes=12_500)
        server = SpinVideoServer(bed.stacks[0], frame_bytes=12_500)
        server.add_stream(bed.ip(1), VIDEO_PORT_BASE, frames=6)
        bed.engine.run(until=400_000.0)
        assert server.stats.frames_sent == 6
        assert client.frames_displayed >= 5
        assert server.stats.deadline_misses == 0

    def test_unix_server_streams_frames(self):
        bed = build_testbed("unix", "t3")
        from repro.apps import UnixVideoClient
        client = UnixVideoClient(bed.sockets[1], frame_bytes=12_500)
        server = UnixVideoServer(bed.sockets[0], frame_bytes=12_500)
        server.add_stream(bed.ip(1), VIDEO_PORT_BASE, frames=6)
        bed.engine.run(until=400_000.0)
        assert server.stats.frames_sent == 6
        assert client.frames_displayed >= 5

    def test_video_uses_checksum_free_udp(self):
        """The application-specific video protocol skips checksums."""
        bed = build_testbed("spin", "t3")
        SpinVideoClient(bed.stacks[1])
        server = SpinVideoServer(bed.stacks[0])
        server.add_stream(bed.ip(1), VIDEO_PORT_BASE, frames=2)
        bed.engine.run(until=150_000.0)
        assert bed.stacks[0].udp.checksums_skipped > 0

    def test_spin_server_cheaper_than_unix(self):
        spin_bed = build_testbed("spin", "t3")
        SpinVideoClient(spin_bed.stacks[1])
        spin_server = SpinVideoServer(spin_bed.stacks[0])
        spin_server.add_stream(spin_bed.ip(1), VIDEO_PORT_BASE, frames=6)
        spin_bed.engine.run(until=300_000.0)

        unix_bed = build_testbed("unix", "t3")
        from repro.apps import UnixVideoClient
        UnixVideoClient(unix_bed.sockets[1])
        unix_server = UnixVideoServer(unix_bed.sockets[0])
        unix_server.add_stream(unix_bed.ip(1), VIDEO_PORT_BASE, frames=6)
        unix_bed.engine.run(until=300_000.0)

        assert (spin_bed.hosts[0].cpu.busy_time <
                unix_bed.hosts[0].cpu.busy_time / 1.5)


class TestForwarder:
    def _build(self):
        bed = build_testbed("spin", "ethernet", n_hosts=3)
        forwarder = PlexusForwarder(bed.stacks[1], 8080, backends=[bed.ip(2)])
        backend = BackendService(bed.stacks[2], virtual_ip=bed.ip(1),
                                 port=8080, echo=True)
        return bed, forwarder, backend

    def test_connection_redirected_end_to_end(self):
        bed, forwarder, backend = self._build()
        engine = bed.engine
        replies = []
        got = Signal(engine)
        host = bed.hosts[0]

        def run():
            box = {}

            def connect():
                tcb = bed.stacks[0].tcp_manager.connect(
                    Credential("cli"), bed.ip(1), 8080)
                tcb.on_data = lambda data: (replies.append(data),
                                            host.defer(got.fire))
                tcb.on_established = lambda: tcb.send(b"through the kernel")
            waiter = got.wait()
            yield from host.kernel_path(connect)
            yield waiter
        engine.run_process(run())
        assert replies == [b"through the kernel"]
        # End-to-end: the backend terminates the connection.
        assert backend.connections
        assert forwarder.packets_forwarded > 0
        # The forwarder's own TCP never saw the connection.
        assert not bed.stacks[1].tcp.connections

    def test_round_robin_across_backends(self):
        bed = build_testbed("spin", "ethernet", n_hosts=4)
        forwarder = PlexusForwarder(bed.stacks[1], 8080,
                                    backends=[bed.ip(2), bed.ip(3)])
        b1 = BackendService(bed.stacks[2], bed.ip(1), 8080, echo=True)
        b2 = BackendService(bed.stacks[3], bed.ip(1), 8080, echo=True)
        engine = bed.engine
        host = bed.hosts[0]

        def connect_two():
            bed.stacks[0].tcp_manager.connect(Credential("c1"), bed.ip(1), 8080)
            bed.stacks[0].tcp_manager.connect(Credential("c2"), bed.ip(1), 8080)
        engine.run_process(host.kernel_path(connect_two))
        engine.run(until=engine.now + 100_000.0)
        assert len(b1.connections) == 1
        assert len(b2.connections) == 1
        assert forwarder.flow_count() == 2

    def test_forwarder_removal_restores_local_delivery(self):
        bed, forwarder, backend = self._build()
        forwarder.remove()
        # The port is free again on the forwarding host.
        bed.stacks[1].tcp_manager.listen(Credential("local"), 8080,
                                         lambda tcb: None)

    def test_requires_backends(self, spin_pair):
        with pytest.raises(ValueError):
            PlexusForwarder(spin_pair.stacks[0], 8080, backends=[])


class TestHttp:
    PAGES = {"/": b"<html>SPIN</html>", "/paper": b"Plexus " * 500}

    def test_spin_http_end_to_end(self, spin_pair):
        bed = spin_pair
        SpinHttpServer(bed.stacks[1], self.PAGES, port=8088)
        client = SpinHttpClient(bed.stacks[0], bed.ip(1), port=8088)
        status, body = bed.engine.run_process(client.fetch("/"))
        assert (status, body) == (200, b"<html>SPIN</html>")

    def test_spin_http_large_page(self, spin_pair):
        bed = spin_pair
        SpinHttpServer(bed.stacks[1], self.PAGES, port=8088)
        client = SpinHttpClient(bed.stacks[0], bed.ip(1), port=8088)
        status, body = bed.engine.run_process(client.fetch("/paper"))
        assert status == 200
        assert body == self.PAGES["/paper"]

    def test_spin_http_404(self, spin_pair):
        bed = spin_pair
        SpinHttpServer(bed.stacks[1], self.PAGES, port=8088)
        client = SpinHttpClient(bed.stacks[0], bed.ip(1), port=8088)
        status, _body = bed.engine.run_process(client.fetch("/nope"))
        assert status == 404

    def test_unix_http_end_to_end(self, unix_pair):
        bed = unix_pair
        UnixHttpServer(bed.sockets[1], self.PAGES, port=8088)
        status, body = bed.engine.run_process(
            unix_http_get(bed.sockets[0], bed.ip(1), "/", port=8088))
        assert (status, body) == (200, b"<html>SPIN</html>")
