"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.lang import VIEW, ArrayType, Layout, UINT16, UINT32, UINT8
from repro.net.http import build_request, build_response, parse_request, parse_response
from repro.net.checksum import internet_checksum
from repro.net.headers import ip_aton, ip_ntoa
from repro.net.tcp.tcb import seq_add, seq_lt, seq_sub
from repro.sim import Engine
from repro.spin import Mbuf

payloads = st.binary(min_size=0, max_size=6000)
small_payloads = st.binary(min_size=1, max_size=1400)
seqnums = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestChecksumProperties:
    @given(payloads)
    def test_verification_roundtrip(self, data):
        """Stamping the checksum anywhere makes the whole sum verify."""
        buf = bytearray(data) + bytearray(2)
        value = internet_checksum(bytes(buf))
        buf[-2:] = value.to_bytes(2, "big")
        # Only even-length buffers verify exactly (odd padding shifts the
        # words); normalize by padding like real protocols do.
        if len(buf) % 2 == 0:
            assert internet_checksum(bytes(buf)) == 0

    @given(payloads)
    def test_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF

    @given(small_payloads, st.integers(min_value=0, max_value=1399))
    def test_single_bit_flip_detected(self, data, position):
        position %= len(data)
        buf = bytearray(data)
        original = internet_checksum(bytes(buf))
        buf[position] ^= 0x01
        # A one-bit flip always changes the one's-complement sum.
        assert internet_checksum(bytes(buf)) != original


class TestAddressProperties:
    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_ip_roundtrip(self, value):
        assert ip_aton(ip_ntoa(value)) == value


class TestSequenceProperties:
    @given(seqnums, st.integers(min_value=0, max_value=1 << 20))
    def test_add_then_sub(self, base, delta):
        assert seq_sub(seq_add(base, delta), base) == delta

    @given(seqnums, st.integers(min_value=1, max_value=1 << 20))
    def test_lt_after_add(self, base, delta):
        assert seq_lt(base, seq_add(base, delta))
        assert not seq_lt(seq_add(base, delta), base)

    @given(seqnums)
    def test_irreflexive(self, value):
        assert not seq_lt(value, value)


class TestMbufProperties:
    @given(payloads)
    def test_from_bytes_roundtrip(self, data):
        if not data:
            return
        m = Mbuf.from_bytes(data)
        assert m.to_bytes() == data
        assert m.length() == len(data)
        assert m.pkthdr.length == len(data)

    @given(small_payloads, st.binary(min_size=1, max_size=64))
    def test_prepend_roundtrip(self, payload, header):
        m = Mbuf.from_bytes(payload, leading_space=32)
        m = m.prepend(header)
        assert m.to_bytes() == header + payload
        assert m.pkthdr.length == len(header) + len(payload)

    @given(small_payloads, st.data())
    def test_adj_front_matches_slice(self, payload, data):
        count = data.draw(st.integers(min_value=0, max_value=len(payload)))
        m = Mbuf.from_bytes(payload)
        m.adj(count)
        assert m.to_bytes() == payload[count:]

    @given(small_payloads, st.data())
    def test_adj_back_matches_slice(self, payload, data):
        count = data.draw(st.integers(min_value=0, max_value=len(payload)))
        m = Mbuf.from_bytes(payload)
        m.adj(-count)
        assert m.to_bytes() == payload[:len(payload) - count]

    @given(payloads)
    def test_share_preserves_bytes(self, data):
        if not data:
            return
        m = Mbuf.from_bytes(data)
        assert m.share().to_bytes() == data

    @given(small_payloads)
    def test_copy_packet_is_independent(self, data):
        m = Mbuf.from_bytes(data)
        clone = m.copy_packet()
        view = clone.writable_data()
        view[0] = (view[0] + 1) % 256
        assert m.to_bytes() == data


class TestViewProperties:
    LAYOUT = Layout("P", [("a", UINT8), ("b", UINT16), ("c", UINT32),
                          ("d", ArrayType(UINT8, 4))])

    @given(st.integers(0, 255), st.integers(0, 0xFFFF),
           st.integers(0, 0xFFFFFFFF), st.binary(min_size=4, max_size=4))
    def test_encode_decode_roundtrip(self, a, b, c, d):
        buf = bytearray(self.LAYOUT.size)
        view = VIEW(buf, self.LAYOUT)
        view.a, view.b, view.c, view.d = a, b, c, d
        again = VIEW(bytes(buf), self.LAYOUT)
        assert (again.a, again.b, again.c, again.d.tobytes()) == (a, b, c, d)

    @given(st.binary(min_size=11, max_size=64),
           st.integers(min_value=0, max_value=32))
    def test_view_never_reads_out_of_window(self, data, offset):
        if offset + self.LAYOUT.size > len(data):
            return
        view = VIEW(data, self.LAYOUT, offset=offset)
        assert view.tobytes() == data[offset:offset + self.LAYOUT.size]


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_events_fire_in_time_order(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.timeout(delay).callbacks.append(
                lambda evt, d=delay: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert engine.now == max(delays)

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                    max_size=20))
    @settings(max_examples=30)
    def test_resource_conservation(self, priorities):
        """Grants never exceed capacity; everyone is eventually served."""
        from repro.sim import Resource
        engine = Engine()
        resource = Resource(engine, capacity=2)
        served = []

        def worker(priority):
            request = resource.request(priority)
            yield request
            assert resource.in_use <= resource.capacity
            yield engine.timeout(1.0)
            request.release()
            served.append(priority)
        for priority in priorities:
            engine.process(worker(priority))
        engine.run()
        assert sorted(served) == sorted(priorities)


class TestStackProperties:
    @given(st.binary(min_size=1, max_size=3000), st.integers(600, 1500))
    @settings(max_examples=20, deadline=None)
    def test_udp_payload_integrity_any_size_and_mtu(self, payload, mtu):
        """Whatever the payload and MTU, UDP delivers exactly the bytes
        (through fragmentation when needed)."""
        from nethelpers import make_pair
        engine, wire, a, b = make_pair(mtu=mtu)
        got = []
        b.udp.upcall = (lambda m, off, *rest:
                        got.append(bytes(m.to_bytes()[off:])))

        def work():
            m = a.host.mbufs.from_bytes(payload, leading_space=64)
            a.udp.output(m, 5000, b.my_ip, 6000)
        a.run_kernel(work)
        engine.run()
        assert got == [payload]

    @given(st.binary(min_size=1, max_size=20_000))
    @settings(max_examples=10, deadline=None)
    def test_tcp_stream_integrity(self, payload):
        """TCP delivers exactly the bytes, in order, for any payload."""
        from nethelpers import make_pair
        engine, wire, a, b = make_pair()
        got = []

        def on_accept(tcb):
            tcb.on_data = got.append
        b.tcp.listen(9000, on_accept)
        box = {}
        a.run_kernel(lambda: box.setdefault("t", a.tcp.connect(b.my_ip, 9000)))
        engine.run()
        a.run_kernel(lambda: box["t"].send(payload))
        engine.run()
        assert b"".join(got) == payload[:box["t"].snd_buf_limit]


class TestHttpProperties:
    header_names = st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll"),
                               max_codepoint=127),
        min_size=1, max_size=16)
    header_values = st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"),
                               max_codepoint=127),
        min_size=0, max_size=32)
    paths = st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"),
                               max_codepoint=127),
        min_size=0, max_size=40).map(lambda suffix: "/" + suffix)

    @given(paths, st.dictionaries(header_names, header_values, max_size=5))
    @settings(max_examples=50)
    def test_request_roundtrip(self, path, headers):
        method, parsed_path, parsed = parse_request(
            build_request("GET", path, headers))
        assert method == "GET"
        assert parsed_path == path
        # Header names are case-insensitive on the wire: names that
        # collide after folding keep the last value in emission order.
        expected = {}
        for key, value in headers.items():
            expected[key.lower()] = value.strip()
        for key, value in expected.items():
            assert parsed[key] == value

    @given(st.sampled_from([200, 400, 404, 500]),
           st.binary(min_size=0, max_size=4096))
    @settings(max_examples=50)
    def test_response_roundtrip(self, status, body):
        parsed_status, headers, parsed_body = parse_response(
            build_response(status, body))
        assert parsed_status == status
        assert parsed_body == body
        assert int(headers["content-length"]) == len(body)


class TestReadOnlyProperties:
    @given(st.binary(min_size=1, max_size=512))
    def test_readonly_views_equal_plain_views(self, data):
        """Reading through READONLY wrapping never changes what is read."""
        from repro.lang import readonly
        wrapped = readonly(bytearray(data))
        assert bytes(wrapped) == data
        assert wrapped[0] == data[0]
        assert wrapped[0:min(8, len(data))] == data[0:min(8, len(data))]

    @given(st.binary(min_size=1, max_size=512),
           st.integers(min_value=0, max_value=511))
    def test_mutation_always_rejected(self, data, index):
        from repro.lang import ReadOnlyViolation, readonly
        import pytest as _pytest
        wrapped = readonly(bytearray(data))
        with _pytest.raises(ReadOnlyViolation):
            wrapped[index % len(data)] = 0
        assert bytes(wrapped) == data  # unchanged
