"""Determinism precondition for the partitioned simulation core.

The serial-oracle ladder (``REPRO_SIM_PARALLEL=0`` vs ``--sim-jobs N``)
only proves anything if a serial run is a pure function of its inputs in
the first place: two back-to-back serial runs of the same workload in
the same process must agree on every observable -- the simulated-time
fingerprint, the full metrics snapshot, and the profiler's folded
stacks (which attribute every charged simulated microsecond, so they
are the finest-grained determinism probe the repo has).

These tests pin that precondition on small-scale ``many_flows`` -- the
workload the parallel gate shards -- for both the classic single-engine
path and the partitioned serial executor.
"""

from repro.bench.parallel import run_partitioned_many_flows
from repro.bench.wallclock import _many_flows
from repro.obs import CpuProfiler

SCALE = 300


def _profiled_many_flows():
    holder = {}

    def instrument(bed):
        profiler = CpuProfiler()
        profiler.attach(bed.hosts)
        holder["profiler"] = profiler

    record = _many_flows(SCALE, instrument=instrument)
    return record, holder["profiler"]


class TestSerialDeterminism:
    def test_back_to_back_runs_bit_identical(self):
        first, prof1 = _profiled_many_flows()
        second, prof2 = _profiled_many_flows()
        assert first["fingerprint"] == second["fingerprint"]
        assert first["metrics"] == second["metrics"]
        assert first["events"] == second["events"]

        folded = prof1.folded_text()
        assert folded == prof2.folded_text()
        # Sanity: the probe actually measured something on the unix bed.
        assert folded.strip()
        assert any(line.startswith("unix-h") for line in folded.splitlines())

    def test_partitioned_serial_executor_repeats_identically(self):
        first = run_partitioned_many_flows(SCALE, 2, parallel=False)
        second = run_partitioned_many_flows(SCALE, 2, parallel=False)
        assert first["fingerprint"] == second["fingerprint"]
        assert first["metrics"] == second["metrics"]
        assert first["events"] == second["events"]
        assert first["rounds"] == second["rounds"]
