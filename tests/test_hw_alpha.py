"""Tests for the calibrated cost table: the reproduction's contract."""

import dataclasses

import pytest

from repro.hw.alpha import ALPHA_21064, CostTable, MICROSECONDS_PER_SECOND


class TestCostTable:
    def test_all_costs_positive(self):
        for field in dataclasses.fields(CostTable):
            assert getattr(ALPHA_21064, field.name) > 0, field.name

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ALPHA_21064.procedure_call = 1.0

    def test_scaled_scales_every_field(self):
        doubled = ALPHA_21064.scaled(2.0)
        for field in dataclasses.fields(CostTable):
            assert getattr(doubled, field.name) == pytest.approx(
                getattr(ALPHA_21064, field.name) * 2)

    def test_replace_overrides_one_field(self):
        custom = ALPHA_21064.replace(interrupt_entry=99.0)
        assert custom.interrupt_entry == 99.0
        assert custom.interrupt_exit == ALPHA_21064.interrupt_exit

    def test_units(self):
        assert MICROSECONDS_PER_SECOND == 1_000_000.0


class TestCalibrationAnchors:
    """Relationships the paper's narrative depends on, as facts of the
    table -- if someone edits a constant and breaks these, the headline
    results will drift in ways the golden checks explain."""

    def test_boundary_crossing_dwarfs_procedure_call(self):
        """The whole thesis: a trap + copy path costs orders of magnitude
        more than an in-kernel procedure call."""
        assert ALPHA_21064.syscall_trap > 10 * ALPHA_21064.procedure_call

    def test_dispatch_is_procedure_call_scale(self):
        """'The overhead of invoking each handler is roughly one
        procedure call.'"""
        ratio = ALPHA_21064.dispatch_per_handler / ALPHA_21064.procedure_call
        assert 1.0 <= ratio <= 3.0

    def test_context_switch_dominates_thread_spawn(self):
        assert ALPHA_21064.context_switch > ALPHA_21064.thread_spawn

    def test_framebuffer_is_order_of_magnitude_slower_than_ram(self):
        """Paper sec. 5.1: 'a factor of 10 times slower'."""
        ratio = (ALPHA_21064.framebuffer_write_per_byte /
                 ALPHA_21064.copy_per_byte)
        assert ratio >= 10

    def test_interrupt_entry_cheaper_than_context_switch(self):
        """Why interrupt-level handlers win over thread delivery."""
        assert ALPHA_21064.interrupt_entry + ALPHA_21064.interrupt_exit < \
            ALPHA_21064.thread_spawn + ALPHA_21064.process_wakeup

    def test_checksum_cheaper_than_copy(self):
        """A checksum pass reads; a copy reads and writes."""
        assert ALPHA_21064.checksum_per_byte <= ALPHA_21064.copy_per_byte * 1.5
