"""Tests for the user-process model of the monolithic OS."""

import pytest

from repro.unixos import UnixKernel, UserProcess


@pytest.fixture
def unix_host(engine):
    return UnixKernel(engine, "u1")


class TestUserProcess:
    def test_app_compute_charges_app_category(self, engine, unix_host):
        proc = UserProcess(unix_host, "worker")

        def main():
            yield from proc.app_compute(500.0)
            return "finished"
        proc.start(main())
        engine.run()
        assert proc.finished
        assert unix_host.cpu.category_times.get("app") == pytest.approx(500.0)
        assert unix_host.cpu.busy_time == pytest.approx(500.0)

    def test_process_exceptions_surface(self, engine, unix_host):
        proc = UserProcess(unix_host, "crasher")

        def main():
            yield from proc.app_compute(1.0)
            raise ValueError("app bug")
        proc.start(main())
        with pytest.raises(ValueError, match="app bug"):
            engine.run()

    def test_two_processes_share_cpu(self, engine, unix_host):
        finish = {}

        def make(name):
            proc = UserProcess(unix_host, name)

            def main():
                yield from proc.app_compute(100.0)
                finish[name] = engine.now
            return proc, main
        for name in ("a", "b"):
            proc, main = make(name)
            proc.start(main())
        engine.run()
        # One CPU: the second process finishes after the first.
        assert finish["b"] == pytest.approx(200.0)

    def test_not_finished_before_run(self, engine, unix_host):
        proc = UserProcess(unix_host, "slow")

        def main():
            yield from proc.app_compute(10.0)
        proc.start(main())
        assert not proc.finished
        engine.run()
        assert proc.finished
