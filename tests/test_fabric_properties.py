"""Property tests: the switch fabric conserves frames, ECMP is a pure
function of (seed, 5-tuple), and partitioned fat-tree runs are
bit-identical to the single-engine build.

Hypothesis draws whole scenarios -- a topology, a traffic schedule, and
an optional extra counting stage spliced into every pipeline -- and
asserts the conservation laws the chaos invariants also check: every
accepted frame meets exactly one fate, and a pure-Count stage never
changes what gets delivered.
"""

from hypothesis import given, settings, strategies as st

from repro.fabric.ecmp import ecmp_select
from repro.fabric.table import Count, MatchTable
from repro.fabric.topology import leaf_spine, linear_chain
from repro.fabric.traffic import OpenLoopSource
from repro.net.headers import IPPROTO_UDP, ip_aton

from test_fabric import IP_B, UdpHarness

TOPOLOGIES = {
    "chain1": lambda: (linear_chain(1), IP_B),
    "chain3": lambda: (linear_chain(3), IP_B),
    "leaf_spine_2x2": lambda: (leaf_spine(2, 2), ip_aton("10.0.1.2")),
    "leaf_spine_3x3": lambda: (leaf_spine(3, 3), ip_aton("10.0.1.2")),
}


@given(
    topo=st.sampled_from(sorted(TOPOLOGIES)),
    count=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
    count_stage=st.booleans(),
)
@settings(max_examples=15, deadline=None)
def test_frame_conservation_over_generated_scenarios(topo, count, seed,
                                                     count_stage):
    bed, dst_ip = TOPOLOGIES[topo]()
    if count_stage:
        # A pure-Count stage ends without Forward/Drop, so the walk must
        # fall through to the routing table unchanged.
        for switch in bed.switches:
            tally = MatchTable("tally", "proto")
            tally.set(IPPROTO_UDP, (Count("udp"),))
            switch.tables.insert(0, tally)
    source = OpenLoopSource(seed, mean_gap_us=200.0, size_dist="pareto")
    harness = UdpHarness(bed, dst_ip=dst_ip)
    harness.send([bytes(size) for _, size in source.schedule(count)],
                 gap_us=200.0)
    bed.engine.run()

    assert len(harness.received) == count      # lossless fabric delivers all
    assert bed.switch_conservation() == []
    for switch in bed.switches:
        accepted = sum(port.received for port in switch.ports)
        assert accepted == switch.pipeline_packets
        assert switch.pipeline_forwarded + switch.pipeline_dropped == accepted
        assert sum(port.forwarded for port in switch.ports) \
            == switch.pipeline_forwarded
        if count_stage:
            assert switch.counters.get("udp", 0) == switch.pipeline_packets


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    src_ip=st.integers(min_value=0, max_value=2**32 - 1),
    dst_ip=st.integers(min_value=0, max_value=2**32 - 1),
    src_port=st.integers(min_value=0, max_value=2**16 - 1),
    dst_port=st.integers(min_value=0, max_value=2**16 - 1),
    group=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=200, deadline=None)
def test_ecmp_is_a_pure_function_of_seed_and_5tuple(seed, src_ip, dst_ip,
                                                    src_port, dst_port,
                                                    group):
    pick = ecmp_select(seed, IPPROTO_UDP, src_ip, dst_ip, src_port,
                       dst_port, group)
    assert 0 <= pick < group
    assert pick == ecmp_select(seed, IPPROTO_UDP, src_ip, dst_ip, src_port,
                               dst_port, group)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=0, max_value=40),
    extra=st.integers(min_value=0, max_value=40),
    arrival=st.sampled_from(("poisson", "pareto")),
    size_dist=st.sampled_from(("fixed", "pareto")),
)
@settings(max_examples=60, deadline=None)
def test_open_loop_schedules_replay_and_prefix(seed, n, extra, arrival,
                                               size_dist):
    source = OpenLoopSource(seed, arrival=arrival, arrival_alpha=2.0,
                            size_dist=size_dist)
    schedule = source.schedule(n)
    assert schedule == OpenLoopSource(seed, arrival=arrival,
                                      arrival_alpha=2.0,
                                      size_dist=size_dist).schedule(n)
    assert schedule == source.schedule(n + extra)[:n]
    assert all(gap >= 0.0 and size >= 1 for gap, size in schedule)


class TestPartitionedFatTree:
    """Serial-oracle vs forked executors vs the single-engine build."""

    SCALE = 6

    def test_parallel_matches_serial_oracle(self):
        from repro.bench.parallel import run_partitioned_workload
        serial = run_partitioned_workload("fabric_fat_tree", self.SCALE, 2,
                                          parallel=False)
        current = run_partitioned_workload("fabric_fat_tree", self.SCALE, 2,
                                           parallel=True)
        assert current["fingerprint"] == serial["fingerprint"]
        assert current["events"] == serial["events"]
        assert current["metrics"] == serial["metrics"]
        assert serial["executor"] == "serial"
        assert current["executor"] == "parallel"

    def test_partitioned_matches_single_engine_totals(self):
        from repro.bench.parallel import run_partitioned_workload
        from repro.bench.wallclock import _fabric_fat_tree
        single = _fabric_fat_tree(self.SCALE)
        serial = run_partitioned_workload("fabric_fat_tree", self.SCALE, 2,
                                          parallel=False)
        for key in ("sent", "received", "bytes", "final_now_us",
                    "switch_forwarded", "switch_dropped", "ecmp"):
            assert serial["fingerprint"][key] == single["fingerprint"][key]

    def test_fabric_fat_tree_is_on_demand_only(self):
        from repro.bench.wallclock import ON_DEMAND_WORKLOADS, WORKLOADS
        assert "fabric_fat_tree" in WORKLOADS
        assert "fabric_fat_tree" in ON_DEMAND_WORKLOADS
