"""Tests for TCP: handshake, data flow, loss recovery, teardown.

The harness wires two stacks over a lossy direct wire, so loss injection
(and therefore retransmission, fast retransmit, and persist behaviour)
can be exercised deterministically.
"""

import pytest

from repro.lang import VIEW
from repro.net.headers import IPPROTO_TCP, TCP_HEADER
from repro.net.tcp import TcpState
from repro.net.tcp.tcb import seq_add, seq_lt, seq_sub

from nethelpers import make_pair

PORT = 9000


def establish(engine, a, b, server_received=None):
    """Set up a listener on b, connect from a; returns (client, server) TCBs."""
    accepted = []

    def on_accept(tcb):
        accepted.append(tcb)
        if server_received is not None:
            tcb.on_data = server_received
    b.tcp.listen(PORT, on_accept)
    client_box = {}

    def connect():
        client_box["tcb"] = a.tcp.connect(b.my_ip, PORT)
    a.run_kernel(connect)
    engine.run()
    client = client_box["tcb"]
    assert accepted, "server never accepted"
    return client, accepted[0]


def client_send(engine, a, tcb, data):
    a.run_kernel(lambda: tcb.send(data))
    engine.run()


class TestSequenceArithmetic:
    def test_wraparound_lt(self):
        assert seq_lt(0xFFFFFFF0, 0x10)
        assert not seq_lt(0x10, 0xFFFFFFF0)

    def test_add_wraps(self):
        assert seq_add(0xFFFFFFFF, 1) == 0

    def test_sub_signed(self):
        assert seq_sub(5, 10) == -5
        assert seq_sub(0x5, 0xFFFFFFFB) == 10


class TestHandshake:
    def test_three_way_handshake(self):
        engine, wire, a, b = make_pair()
        client, server = establish(engine, a, b)
        assert client.state == TcpState.ESTABLISHED
        assert server.state == TcpState.ESTABLISHED

    def test_handshake_is_three_segments(self):
        engine, wire, a, b = make_pair()
        establish(engine, a, b)
        # SYN, SYN|ACK, ACK.
        assert len(wire.sent) == 3

    def test_connect_to_closed_port_gets_rst(self):
        engine, wire, a, b = make_pair()
        resets = []

        def connect():
            tcb = a.tcp.connect(b.my_ip, PORT)
            tcb.on_reset = lambda: resets.append(True)
        a.run_kernel(connect)
        engine.run()
        assert resets == [True]
        assert b.tcp.no_listener == 1
        assert not a.tcp.connections

    def test_syn_retransmitted_when_lost(self):
        engine, wire, a, b = make_pair()
        counter = {"n": 0}

        def drop_first(data, hop):
            counter["n"] += 1
            return counter["n"] == 1
        wire.drop_filter = drop_first
        client, server = establish(engine, a, b)
        assert client.state == TcpState.ESTABLISHED
        assert client.retransmits >= 1

    def test_established_callback_fires(self):
        engine, wire, a, b = make_pair()
        events = []
        b.tcp.listen(PORT, lambda tcb: events.append("accepted"))

        def connect():
            tcb = a.tcp.connect(b.my_ip, PORT)
            tcb.on_established = lambda: events.append("established")
        a.run_kernel(connect)
        engine.run()
        assert sorted(events) == ["accepted", "established"]

    def test_backlog_limits_pending(self):
        engine, wire, a, b = make_pair()
        b.tcp.listen(PORT, lambda tcb: None, backlog=0)

        def connect():
            a.tcp.connect(b.my_ip, PORT)
        a.run_kernel(connect)
        engine.run(until=10_000.0)
        # SYN dropped by the full backlog; no connection forms promptly.
        assert not any(t.state == TcpState.ESTABLISHED
                       for t in b.tcp.connections.values())

    def test_duplicate_listen_rejected(self):
        engine, wire, a, b = make_pair()
        b.tcp.listen(PORT, lambda tcb: None)
        with pytest.raises(RuntimeError):
            b.tcp.listen(PORT, lambda tcb: None)


class TestDataTransfer:
    def test_small_payload_delivered(self):
        engine, wire, a, b = make_pair()
        got = []
        client, server = establish(engine, a, b, got.append)
        client_send(engine, a, client, b"hello tcp")
        assert b"".join(got) == b"hello tcp"

    def test_bulk_transfer_integrity(self):
        engine, wire, a, b = make_pair()
        got = []
        client, server = establish(engine, a, b, got.append)
        payload = bytes(range(256)) * 200  # 51200 bytes, many segments
        client_send(engine, a, client, payload)
        assert b"".join(got) == payload

    def test_segments_respect_mss(self):
        engine, wire, a, b = make_pair(mtu=600)
        got = []
        client, server = establish(engine, a, b, got.append)
        client_send(engine, a, client, bytes(5000))
        mss = a.tcp.default_mss
        data_lens = [len(p) - 40 for _s, p, _h in wire.sent if len(p) > 40]
        assert max(data_lens) <= mss
        assert b"".join(got) == bytes(5000)

    def test_bidirectional_transfer(self):
        engine, wire, a, b = make_pair()
        to_server, to_client = [], []
        client, server = establish(engine, a, b, to_server.append)
        client.on_data = to_client.append
        client_send(engine, a, client, b"ping from client")
        b.run_kernel(lambda: server.send(b"pong from server"))
        engine.run()
        assert b"".join(to_server) == b"ping from client"
        assert b"".join(to_client) == b"pong from server"

    def test_send_buffer_limit_respected(self):
        engine, wire, a, b = make_pair()
        client, server = establish(engine, a, b)
        box = {}

        def overfill():
            box["accepted"] = client.send(bytes(client.snd_buf_limit * 2))
        a.run_kernel(overfill)
        engine.run()
        assert box["accepted"] <= client.snd_buf_limit

    def test_on_sendable_fires_as_acks_arrive(self):
        engine, wire, a, b = make_pair()
        client, server = establish(engine, a, b)
        space_events = []
        client.on_sendable = space_events.append
        client_send(engine, a, client, bytes(50_000))
        assert space_events  # ACKs freed buffer space
        assert client.send_space == client.snd_buf_limit

    def test_corrupt_segment_dropped(self):
        engine, wire, a, b = make_pair()
        got = []
        client, server = establish(engine, a, b, got.append)
        captured = []
        wire.drop_filter = (
            lambda data, hop: captured.append(bytearray(data)) or True)
        a.run_kernel(lambda: client.send(b"garble me"))
        engine.run(until=engine.now + 500.0)
        packet = captured[0]
        packet[-1] ^= 0xFF

        def misdeliver():
            b.ip.input(b.host.mbufs.from_bytes(bytes(packet)), 0)
        b.run_kernel(misdeliver)
        engine.run(until=engine.now + 1000.0)
        assert got == []
        assert b.tcp.checksum_errors == 1
        # Quiesce: the retransmission machinery is still trying.
        a.run_kernel(client.abort)
        b.run_kernel(server.abort)
        engine.run(until=engine.now + 1000.0)


class TestLossRecovery:
    def test_lost_data_segment_retransmitted(self):
        engine, wire, a, b = make_pair()
        got = []
        client, server = establish(engine, a, b, got.append)
        state = {"dropped": False}

        def drop_first_data(data, hop):
            if not state["dropped"] and len(data) > 40:
                state["dropped"] = True
                return True
            return False
        wire.drop_filter = drop_first_data
        client_send(engine, a, client, b"must arrive")
        assert b"".join(got) == b"must arrive"
        assert client.retransmits >= 1

    def test_fast_retransmit_on_dupacks(self):
        engine, wire, a, b = make_pair()
        got = []
        client, server = establish(engine, a, b, got.append)
        # Open the congestion window so several segments fly at once.
        client.cwnd = 64 * 1024
        state = {"dropped": False}

        def drop_first_data(data, hop):
            if not state["dropped"] and len(data) > 60:
                state["dropped"] = True
                return True
            return False
        wire.drop_filter = drop_first_data
        payload = bytes(20_000)
        client_send(engine, a, client, payload)
        assert b"".join(got) == payload
        assert client.fast_retransmits >= 1

    def test_out_of_order_reassembled(self):
        engine, wire, a, b = make_pair()
        got = []
        client, server = establish(engine, a, b, got.append)
        client.cwnd = 64 * 1024
        state = {"held": None}

        # Hold the first data segment, release it after the second.
        def reorder(data, hop):
            if len(data) > 60 and state["held"] is None:
                state["held"] = data
                return True
            return False
        wire.drop_filter = reorder
        payload = bytes(range(256)) * 30
        a.run_kernel(lambda: client.send(payload))
        engine.run(until=engine.now + 2000.0)
        wire.drop_filter = None
        held = state["held"]

        def redeliver():
            b.ip.input(b.host.mbufs.from_bytes(held), 0)
        b.run_kernel(redeliver)
        engine.run()
        assert b"".join(got) == payload

    def test_rto_backs_off(self):
        engine, wire, a, b = make_pair()
        client, server = establish(engine, a, b)
        wire.drop_filter = lambda data, hop: True  # black hole
        a.run_kernel(lambda: client.send(b"into the void"))
        engine.run(until=engine.now + 50_000.0)
        assert client.retransmits >= 2
        assert client.rto > client.MIN_RTO_US

    def test_rtt_estimation_converges(self):
        engine, wire, a, b = make_pair(delay_us=200.0)
        got = []
        client, server = establish(engine, a, b, got.append)
        for _ in range(5):
            client_send(engine, a, client, bytes(500))
        assert client.srtt is not None
        # One-way delay 200us -> RTT ~400us plus processing.
        assert 300.0 < client.srtt < 2000.0


class TestFlowControl:
    def test_receiver_window_limits_sender(self):
        engine, wire, a, b = make_pair()
        received = []

        def slow_consumer(tcb):
            tcb.auto_consume = False
            tcb.on_data = received.append
        accepted = []

        def on_accept(tcb):
            accepted.append(tcb)
            slow_consumer(tcb)
        b.tcp.listen(PORT, on_accept)
        a.run_kernel(lambda: a.tcp.connect(b.my_ip, PORT))
        engine.run()
        client = next(iter(a.tcp.connections.values()))
        server = accepted[0]
        payload = bytes(200_000)  # far beyond the 64K receive buffer

        def pump():
            sent = {"n": 0}

            def fill(_space=None):
                while sent["n"] < len(payload):
                    accepted_n = client.send(payload[sent["n"]:sent["n"] + 8192])
                    sent["n"] += accepted_n
                    if accepted_n == 0:
                        break
            client.on_sendable = fill
            fill()
        a.run_kernel(pump)
        engine.run(until=engine.now + 500_000.0)
        # The never-draining receiver caps delivery near its buffer size.
        delivered = sum(len(chunk) for chunk in received)
        assert delivered <= server.rcv_buf_limit
        assert delivered >= server.rcv_buf_limit // 2

        # Draining reopens the window and the rest flows.
        def drain():
            server.app_consumed(server.delivered_unconsumed)
        for _ in range(40):
            b.run_kernel(drain)
            engine.run(until=engine.now + 100_000.0)
        assert sum(len(chunk) for chunk in received) == len(payload)

    def test_zero_window_probe(self):
        engine, wire, a, b = make_pair()
        accepted = []

        def on_accept(tcb):
            tcb.auto_consume = False
            tcb.on_data = lambda data: None
            accepted.append(tcb)
        b.tcp.listen(PORT, on_accept)
        a.run_kernel(lambda: a.tcp.connect(b.my_ip, PORT))
        engine.run()
        client = next(iter(a.tcp.connections.values()))
        payload = bytes(80_000)

        def pump():
            sent = {"n": 0}

            def fill(_space=None):
                while sent["n"] < len(payload):
                    n = client.send(payload[sent["n"]:sent["n"] + 8192])
                    sent["n"] += n
                    if n == 0:
                        break
            client.on_sendable = fill
            fill()
        a.run_kernel(pump)
        engine.run(until=engine.now + 100_000.0)
        before = len(wire.sent)
        engine.run(until=engine.now + 50_000.0)
        # Persist probes keep poking the zero window.
        assert len(wire.sent) > before
        assert client._probe_pending or client.snd_wnd == 0


class TestCongestionControl:
    def test_slow_start_grows_cwnd(self):
        engine, wire, a, b = make_pair()
        got = []
        client, server = establish(engine, a, b, got.append)
        initial = client.cwnd
        client_send(engine, a, client, bytes(30_000))
        assert client.cwnd > initial

    def test_loss_shrinks_cwnd(self):
        engine, wire, a, b = make_pair()
        client, server = establish(engine, a, b)
        client.cwnd = 32 * 1024
        wire.drop_filter = lambda data, hop: len(data) > 60
        a.run_kernel(lambda: client.send(bytes(10_000)))
        engine.run(until=engine.now + 20_000.0)
        wire.drop_filter = None
        assert client.cwnd < 32 * 1024
        engine.run()


class TestTeardown:
    def test_orderly_close_reaches_closed_and_time_wait(self):
        engine, wire, a, b = make_pair()
        closed = []
        client, server = establish(engine, a, b)
        server.on_close = lambda: closed.append("server")
        a.run_kernel(client.close)
        engine.run(until=engine.now + 100_000.0)
        assert closed == ["server"]
        assert client.state == TcpState.FIN_WAIT_2
        b.run_kernel(server.close)
        engine.run(until=engine.now + 100_000.0)
        assert server.state == TcpState.CLOSED
        assert client.state == TcpState.TIME_WAIT
        engine.run()  # let 2*MSL expire
        assert client.state == TcpState.CLOSED

    def test_data_before_fin_all_delivered(self):
        engine, wire, a, b = make_pair()
        got = []
        client, server = establish(engine, a, b, got.append)

        def send_and_close():
            client.send(b"last words")
            client.close()
        a.run_kernel(send_and_close)
        engine.run(until=engine.now + 100_000.0)
        assert b"".join(got) == b"last words"
        assert server.state == TcpState.CLOSE_WAIT

    def test_abort_sends_rst(self):
        engine, wire, a, b = make_pair()
        resets = []
        client, server = establish(engine, a, b)
        server.on_reset = lambda: resets.append(True)
        a.run_kernel(client.abort)
        engine.run()
        assert resets == [True]
        assert client.state == TcpState.CLOSED
        assert server.state == TcpState.CLOSED

    def test_connections_forgotten_after_close(self):
        engine, wire, a, b = make_pair()
        client, server = establish(engine, a, b)
        a.run_kernel(client.abort)
        engine.run()
        assert not a.tcp.connections
        assert not b.tcp.connections


class TestDemux:
    def test_two_connections_same_port_pair_hosts(self):
        engine, wire, a, b = make_pair()
        streams = {}

        def on_accept(tcb):
            streams[tcb.rport] = []
            tcb.on_data = streams[tcb.rport].append
        b.tcp.listen(PORT, on_accept)
        tcbs = {}

        def connect_two():
            tcbs["one"] = a.tcp.connect(b.my_ip, PORT)
            tcbs["two"] = a.tcp.connect(b.my_ip, PORT)
        a.run_kernel(connect_two)
        engine.run()
        client_send(engine, a, tcbs["one"], b"stream-one")
        client_send(engine, a, tcbs["two"], b"stream-two")
        assert b"".join(streams[tcbs["one"].lport]) == b"stream-one"
        assert b"".join(streams[tcbs["two"].lport]) == b"stream-two"

    def test_ephemeral_ports_unique(self):
        engine, wire, a, b = make_pair()
        b.tcp.listen(PORT, lambda tcb: None)
        ports = set()

        def connect_many():
            for _ in range(10):
                ports.add(a.tcp.connect(b.my_ip, PORT).lport)
        a.run_kernel(connect_many)
        engine.run()
        assert len(ports) == 10

    def test_stray_ack_gets_rst(self):
        engine, wire, a, b = make_pair()
        # Build a fake in-window ACK segment to a port with no listener.
        from repro.net.checksum import internet_checksum
        from repro.net.headers import pseudo_header
        header = bytearray(20)
        view = VIEW(header, TCP_HEADER)
        view.src_port = 1234
        view.dst_port = 4321
        view.seq = 100
        view.ack = 200
        view.off_flags = (5 << 12) | 0x10  # ACK
        pseudo = pseudo_header(a.my_ip, b.my_ip, IPPROTO_TCP, 20)
        view.checksum = internet_checksum(pseudo + bytes(header))

        def deliver():
            b.tcp.input(b.host.mbufs.from_bytes(bytes(header)), 0,
                        a.my_ip, b.my_ip)
        b.run_kernel(deliver)
        engine.run()
        assert b.tcp.resets_sent == 1
