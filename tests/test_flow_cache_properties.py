"""Property test: the three-way delivery ladder is equivalent.

The flow cache's contract (``repro.spin.flowcache``) is that replaying a
compiled plan is *observably identical* to re-scanning every guard: the
same handlers run in the same order, the same statistics move, and the
same simulated costs are charged in the same order.  Since the codegen
tentpole there are three rungs, not two -- generated fast paths
(default), interpreted plan replay (``REPRO_FLOW_COMPILE=0``), and the
uncached linear scan (``REPRO_FLOW_CACHE=0``) -- so this drives random
interleavings of handler installs, uninstalls, and packet sends through
three kernels in lockstep, one per rung, and asserts the observable
state never diverges: delivery log, bit-identical charged microseconds,
per-handle statistics, and the obs metrics snapshot (minus the
flow-cache counters, which measure the rungs' mechanics and legitimately
differ).

Guards here are pure functions of the flow key, which is exactly the
correctness contract the protocol managers uphold.
"""

from hypothesis import given, settings, strategies as st

from repro.obs.registry import MetricsRegistry
from repro.sim import Engine
from repro.spin import SpinKernel
from repro.spin.flowcache import FlowEntry

# Pure functions of the flow key: the only guards a flow-routed event
# may carry (see the flowcache module docstring).
GUARDS = [
    None,
    lambda key: key % 2 == 0,
    lambda key: key < 2,
    lambda key: key != 1,
    lambda key: True,
]

KEYS = (0, 1, 2, 3)

#: the ladder: how each side raises and whether codegen is armed.
MODES = ("compiled", "replay", "linear")

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("install"), st.integers(0, len(GUARDS) - 1)),
        st.tuples(st.just("uninstall"), st.integers(0, 7)),
        st.tuples(st.just("send"), st.integers(0, len(KEYS) - 1)),
    ),
    min_size=1, max_size=40)


class _Side:
    """One kernel driven through the op sequence under one ladder rung."""

    def __init__(self, mode: str):
        assert mode in MODES
        self.mode = mode
        self.engine = Engine()
        self.kernel = SpinKernel(self.engine, "prop-kernel")
        self.dispatcher = self.kernel.dispatcher
        # Forced per side so the property holds regardless of the
        # process-wide REPRO_FLOW_CACHE / REPRO_FLOW_COMPILE hatches.
        self.dispatcher.flow_cache.compile_enabled = (mode == "compiled")
        self.event = self.dispatcher.declare("Prop.Packet")
        # Constructed directly (not via cache.entry_for), so the cached
        # rungs exercise plan record/replay even if the cache is off in
        # the environment.
        self.flows = {key: FlowEntry((key,)) for key in KEYS}
        self.handles = []
        self.log = []

    def _run(self, fn):
        self.engine.run_process(self.kernel.kernel_path(fn), name="prop-op")
        self.engine.run()

    def apply(self, op, arg):
        if op == "install":
            self._install(arg)
        elif op == "uninstall":
            self._uninstall(arg)
        else:
            self._send(arg)

    def _install(self, guard_idx):
        slot = len(self.handles)

        def handler(key, _slot=slot):
            self.log.append((_slot, key))

        def do():
            self.handles.append(self.dispatcher.install(
                self.event, handler, guard=GUARDS[guard_idx],
                label="h%d" % slot))
        self._run(do)

    def _uninstall(self, pick):
        installed = [h for h in self.handles if h.installed]
        if not installed:
            return  # no-op applied identically on both sides
        self._run(installed[pick % len(installed)].uninstall)

    def _send(self, key_idx):
        key = KEYS[key_idx]
        if self.mode == "linear":
            self._run(lambda: self.dispatcher.raise_event(self.event, key))
        else:
            self._run(lambda: self.dispatcher.raise_flow(
                self.event, self.flows[key], key))

    def metrics(self):
        """The obs snapshot, minus the flow-cache mechanics counters."""
        registry = MetricsRegistry()
        self.dispatcher.register_metrics(registry)
        self.kernel.cpu.register_metrics(registry)
        return {name: entry for name, entry in registry.snapshot().items()
                if not name.startswith("spin.flowcache.")}


class TestFlowCacheEquivalence:
    @given(_ops)
    @settings(max_examples=15, deadline=None)
    def test_ladder_rungs_are_equivalent(self, ops):
        compiled, replay, linear = (_Side(mode) for mode in MODES)
        sides = (compiled, replay, linear)
        for op, arg in ops:
            for side in sides:
                side.apply(op, arg)

        for side in (replay, linear):
            # Identical delivery: same handlers, same packets, same order.
            assert side.log == compiled.log
            # Bit-identical simulated time and cost accounting.
            assert side.engine.now == compiled.engine.now
            assert (dict(side.kernel.cpu.category_times)
                    == dict(compiled.kernel.cpu.category_times))
            # Identical per-handle statistics.
            assert len(side.handles) == len(compiled.handles)
            for sh, ch in zip(side.handles, compiled.handles):
                assert sh.installed == ch.installed
                assert sh.invocations == ch.invocations
                assert sh.guard_rejections == ch.guard_rejections
            assert (side.dispatcher.total_invocations
                    == compiled.dispatcher.total_invocations)
            assert (side.dispatcher.total_raises
                    == compiled.dispatcher.total_raises)
            # Identical metrics snapshot outside the cache mechanics.
            assert side.metrics() == compiled.metrics()

    @given(_ops)
    @settings(max_examples=10, deadline=None)
    def test_plans_replay_after_warmup(self, ops):
        """Sending the same flow twice in a row replays its plan --
        through generated code on the compiled rung."""
        for mode in ("compiled", "replay"):
            side = _Side(mode)
            for op, arg in ops:
                side.apply(op, arg)
            side.apply("send", 0)  # records (or replays) flow 0's plan
            cache = side.dispatcher.flow_cache
            before = cache.hits
            replays_before = cache.compiled_replays
            side.apply("send", 0)  # now the plan exists and is fresh: replay
            assert cache.hits == before + 1
            if mode == "compiled":
                assert cache.compiled_replays == replays_before + 1
            else:
                assert cache.compiled_replays == 0
