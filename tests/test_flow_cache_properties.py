"""Property test: flow-cached dispatch is equivalent to the linear scan.

The flow cache's contract (``repro.spin.flowcache``) is that replaying a
compiled plan is *observably identical* to re-scanning every guard: the
same handlers run in the same order, the same statistics move, and the
same simulated costs are charged in the same order.  This drives random
interleavings of handler installs, uninstalls, and packet sends through
two kernels in lockstep -- one raising along :class:`FlowEntry` objects
(cache on), one using the plain linear ``raise_event`` -- and asserts
the observable state never diverges.

Guards here are pure functions of the flow key, which is exactly the
correctness contract the protocol managers uphold.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Engine
from repro.spin import SpinKernel
from repro.spin.flowcache import FlowEntry

# Pure functions of the flow key: the only guards a flow-routed event
# may carry (see the flowcache module docstring).
GUARDS = [
    None,
    lambda key: key % 2 == 0,
    lambda key: key < 2,
    lambda key: key != 1,
    lambda key: True,
]

KEYS = (0, 1, 2, 3)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("install"), st.integers(0, len(GUARDS) - 1)),
        st.tuples(st.just("uninstall"), st.integers(0, 7)),
        st.tuples(st.just("send"), st.integers(0, len(KEYS) - 1)),
    ),
    min_size=1, max_size=40)


class _Side:
    """One kernel driven through the op sequence (cached or linear)."""

    def __init__(self, cached: bool):
        self.engine = Engine()
        self.kernel = SpinKernel(self.engine, "prop-kernel")
        self.dispatcher = self.kernel.dispatcher
        self.event = self.dispatcher.declare("Prop.Packet")
        self.cached = cached
        # Constructed directly so the property holds regardless of the
        # process-wide REPRO_FLOW_CACHE escape hatch.
        self.flows = {key: FlowEntry((key,)) for key in KEYS}
        self.handles = []
        self.log = []

    def _run(self, fn):
        self.engine.run_process(self.kernel.kernel_path(fn), name="prop-op")
        self.engine.run()

    def apply(self, op, arg):
        if op == "install":
            self._install(arg)
        elif op == "uninstall":
            self._uninstall(arg)
        else:
            self._send(arg)

    def _install(self, guard_idx):
        slot = len(self.handles)

        def handler(key, _slot=slot):
            self.log.append((_slot, key))

        def do():
            self.handles.append(self.dispatcher.install(
                self.event, handler, guard=GUARDS[guard_idx],
                label="h%d" % slot))
        self._run(do)

    def _uninstall(self, pick):
        installed = [h for h in self.handles if h.installed]
        if not installed:
            return  # no-op applied identically on both sides
        self._run(installed[pick % len(installed)].uninstall)

    def _send(self, key_idx):
        key = KEYS[key_idx]
        if self.cached:
            flow = self.flows[key]
            self._run(lambda: self.dispatcher.raise_flow(
                self.event, flow, key))
        else:
            self._run(lambda: self.dispatcher.raise_event(self.event, key))


class TestFlowCacheEquivalence:
    @given(_ops)
    @settings(max_examples=15, deadline=None)
    def test_cached_equals_linear(self, ops):
        cached, linear = _Side(cached=True), _Side(cached=False)
        for op, arg in ops:
            cached.apply(op, arg)
            linear.apply(op, arg)

        # Identical delivery: same handlers, same packets, same order.
        assert cached.log == linear.log
        # Bit-identical simulated time and cost accounting.
        assert cached.engine.now == linear.engine.now
        assert (dict(cached.kernel.cpu.category_times)
                == dict(linear.kernel.cpu.category_times))
        # Identical per-handle statistics.
        assert len(cached.handles) == len(linear.handles)
        for ch, lh in zip(cached.handles, linear.handles):
            assert ch.installed == lh.installed
            assert ch.invocations == lh.invocations
            assert ch.guard_rejections == lh.guard_rejections
        assert (cached.dispatcher.total_invocations
                == linear.dispatcher.total_invocations)
        assert cached.dispatcher.total_raises == linear.dispatcher.total_raises

    @given(_ops)
    @settings(max_examples=10, deadline=None)
    def test_plans_replay_after_warmup(self, ops):
        """Sending the same flow twice in a row replays its plan."""
        side = _Side(cached=True)
        for op, arg in ops:
            side.apply(op, arg)
        side.apply("send", 0)  # records (or replays) flow 0's plan
        before = side.dispatcher.flow_cache.hits
        side.apply("send", 0)  # now the plan exists and is fresh: replay
        assert side.dispatcher.flow_cache.hits == before + 1
