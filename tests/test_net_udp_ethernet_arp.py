"""Tests for UDP, Ethernet framing, and ARP."""

import pytest

from repro.bench.testbed import build_testbed
from repro.lang import VIEW
from repro.net import (
    ETHERNET_HEADER,
    ETHERTYPE_IP,
    UDP_HEADER,
    ip_aton,
    mac_aton,
)

from nethelpers import make_pair


def send_udp(stack, payload, dst, sport=5000, dport=6000, checksum=True):
    def work():
        m = stack.host.mbufs.from_bytes(payload, leading_space=64)
        stack.udp.output(m, sport, dst, dport, checksum=checksum)
    stack.run_kernel(work)


class TestUdp:
    def test_roundtrip_fields(self):
        engine, wire, a, b = make_pair()
        got = []
        b.udp.upcall = (lambda m, off, src, sport, dst, dport:
                        got.append((bytes(m.to_bytes()[off:]), src, sport,
                                    dst, dport)))
        send_udp(a, b"data!", b.my_ip, sport=1234, dport=4321)
        engine.run()
        assert got == [(b"data!", a.my_ip, 1234, b.my_ip, 4321)]
        assert a.udp.datagrams_out == 1
        assert b.udp.datagrams_in == 1

    def test_checksum_detects_corruption(self):
        engine, wire, a, b = make_pair()
        captured = []
        wire.drop_filter = lambda data, hop: captured.append(bytearray(data)) or True
        send_udp(a, b"payload", b.my_ip)
        engine.run()
        packet = captured[0]
        packet[-1] ^= 0x01  # flip a payload bit; fix the IP header? payload
        # is beyond the IP header checksum, only UDP covers it.

        def misdeliver():
            b.ip.input(b.host.mbufs.from_bytes(bytes(packet)), 0)
        b.run_kernel(misdeliver)
        engine.run()
        assert b.udp.checksum_errors == 1
        assert b.udp.datagrams_in == 0

    def test_checksum_disabled_skips_verification(self):
        engine, wire, a, b = make_pair()
        captured = []
        wire.drop_filter = lambda data, hop: captured.append(bytearray(data)) or True
        send_udp(a, b"payload", b.my_ip, checksum=False)
        engine.run()
        packet = captured[0]
        view = VIEW(packet, UDP_HEADER, offset=20)
        assert view.checksum == 0  # zero checksum on the wire
        packet[-1] ^= 0x01  # corruption goes undetected by design
        got = []
        b.udp.upcall = lambda m, off, *rest: got.append(True)

        def misdeliver():
            b.ip.input(b.host.mbufs.from_bytes(bytes(packet)), 0)
        b.run_kernel(misdeliver)
        engine.run()
        assert got == [True]
        assert b.udp.checksums_skipped >= 1

    def test_invalid_port_rejected(self):
        engine, wire, a, b = make_pair()

        def work():
            m = a.host.mbufs.from_bytes(b"x", leading_space=64)
            a.udp.output(m, 0, b.my_ip, 6000)
        with pytest.raises(ValueError):
            engine.run_process(a.host.kernel_path(work))

    def test_truncated_header_ignored(self):
        engine, wire, a, b = make_pair()
        got = []
        b.udp.upcall = lambda *args: got.append(args)

        def work():
            m = b.host.mbufs.from_bytes(b"\x01\x02\x03")  # 3 bytes < 8
            b.udp.input(m, 0, a.my_ip, b.my_ip)
        b.run_kernel(work)
        engine.run()
        assert got == []


class TestEthernetFraming:
    """Ethernet behaviour through the full SPIN testbed."""

    def test_frames_carry_correct_headers(self, spin_pair):
        bed = spin_pair
        captured = []
        original = bed.nics[1].frame_on_wire

        def spy(frame):
            captured.append(frame)
            original(frame)
        bed.nics[1].frame_on_wire = spy
        stack = bed.stacks[0]

        def work():
            m = bed.hosts[0].mbufs.from_bytes(b"x" * 30, leading_space=64)
            stack.ip.output(m, bed.ip(1), 17)
        bed.engine.run_process(bed.hosts[0].kernel_path(work))
        bed.engine.run()
        frame = captured[0]
        header = VIEW(frame.data, ETHERNET_HEADER)
        assert header.type == ETHERTYPE_IP
        assert header.dst.tobytes() == bed.nics[1].address
        assert header.src.tobytes() == bed.nics[0].address


class TestArp:
    def test_cold_cache_resolves_then_sends(self):
        bed = build_testbed("spin", "ethernet", warm_arp=False)
        got = []
        bed.stacks[1].udp.upcall = lambda m, off, *rest: got.append(True)
        stack = bed.stacks[0]

        def work():
            m = bed.hosts[0].mbufs.from_bytes(b"x" * 16, leading_space=64)
            stack.udp.output(m, 5000, bed.ip(1), 6000)
        bed.engine.run_process(bed.hosts[0].kernel_path(work))
        bed.engine.run()
        # The first packet triggered a request/reply exchange, then flowed.
        assert stack.arp.requests_sent == 1
        assert bed.stacks[1].arp.replies_sent == 1
        assert stack.arp.cache[bed.ip(1)] == bed.nics[1].address

    def test_queued_packet_flushed_on_reply(self):
        bed = build_testbed("spin", "ethernet", warm_arp=False)
        seen = []
        bed.stacks[1].udp.upcall = lambda m, off, *rest: seen.append(
            bytes(m.to_bytes()[off:]))
        stack = bed.stacks[0]

        def work():
            for tag in (b"first", b"second"):
                m = bed.hosts[0].mbufs.from_bytes(tag, leading_space=64)
                stack.udp.output(m, 5000, bed.ip(1), 6000)
        bed.engine.run_process(bed.hosts[0].kernel_path(work))
        bed.engine.run()
        assert sorted(seen) == [b"first", b"second"]
        # One request covered both queued packets.
        assert stack.arp.requests_sent <= 2

    def test_receiver_learns_sender_from_request(self):
        bed = build_testbed("spin", "ethernet", warm_arp=False)
        stack = bed.stacks[0]

        def work():
            m = bed.hosts[0].mbufs.from_bytes(b"x", leading_space=64)
            stack.udp.output(m, 5000, bed.ip(1), 6000)
        bed.engine.run_process(bed.hosts[0].kernel_path(work))
        bed.engine.run()
        # Standard ARP behaviour: the target learns the requester.
        assert bed.stacks[1].arp.cache[bed.ip(0)] == bed.nics[0].address

    def test_request_for_other_host_not_answered(self):
        bed = build_testbed("spin", "ethernet", n_hosts=3, warm_arp=False)
        stack = bed.stacks[0]

        def work():
            stack.arp._send_request(bed.ip(2))
        bed.engine.run_process(bed.hosts[0].kernel_path(work))
        bed.engine.run()
        # Host 1 saw the broadcast but is not the target.
        assert bed.stacks[1].arp.replies_sent == 0
        assert bed.stacks[2].arp.replies_sent == 1

    def test_static_entries(self, spin_pair):
        stack = spin_pair.stacks[0]
        mac = mac_aton("02:00:00:00:00:99")
        stack.arp.add_entry(ip_aton("10.1.0.9"), mac)
        assert stack.arp.cache[ip_aton("10.1.0.9")] == mac
