"""Tests for TCP MSS negotiation (RFC 879) and Nagle's algorithm."""

from repro.sim import Engine

from nethelpers import DirectStack, DirectWire, make_pair

PORT = 9000


def make_mixed_mtu_pair(mtu_a: int, mtu_b: int):
    engine = Engine()
    wire = DirectWire(engine, delay_us=40.0)
    a = DirectStack(engine, wire, "host-a", "10.0.0.1", mtu=mtu_a)
    b = DirectStack(engine, wire, "host-b", "10.0.0.2", mtu=mtu_b)
    return engine, wire, a, b


def establish(engine, a, b):
    accepted = []
    b.tcp.listen(PORT, accepted.append)
    box = {}
    a.run_kernel(lambda: box.setdefault("t", a.tcp.connect(b.my_ip, PORT)))
    engine.run()
    return box["t"], accepted[0]


class TestMssNegotiation:
    def test_both_sides_adopt_smaller_mss(self):
        engine, wire, a, b = make_mixed_mtu_pair(9180, 1500)
        client, server = establish(engine, a, b)
        assert client.mss == 1460
        assert server.mss == 1460

    def test_equal_mtus_keep_native_mss(self):
        engine, wire, a, b = make_mixed_mtu_pair(1500, 1500)
        client, server = establish(engine, a, b)
        assert client.mss == server.mss == 1460

    def test_big_sender_never_exceeds_small_receiver_mtu(self):
        """Without negotiation a 9 KB segment would be IP-fragmented (or
        worse); with it, every segment fits the small side's MTU."""
        engine, wire, a, b = make_mixed_mtu_pair(9180, 1500)
        got = []

        def on_accept(tcb):
            tcb.on_data = got.append
        b.tcp.listen(PORT, on_accept)
        box = {}
        a.run_kernel(lambda: box.setdefault("t", a.tcp.connect(b.my_ip, PORT)))
        engine.run()
        a.run_kernel(lambda: box["t"].send(bytes(30_000)))
        engine.run()
        assert sum(len(chunk) for chunk in got) == 30_000
        # No packet on the wire exceeded the small MTU.
        assert max(len(packet) for _s, packet, _h in wire.sent) <= 1500
        assert b.ip.fragments_in == 0

    def test_syn_carries_mss_option(self):
        engine, wire, a, b = make_mixed_mtu_pair(1500, 1500)
        establish(engine, a, b)
        syn = wire.sent[0][1]
        header_len = (syn[20 + 12] >> 4) * 4
        assert header_len == 24  # 20 base + 4-byte MSS option
        options = syn[20 + 20:20 + header_len]
        assert options[0] == 2 and options[1] == 4
        assert int.from_bytes(options[2:4], "big") == 1460

    def test_malformed_options_ignored(self):
        from repro.net.tcp.protocol import TcpProto
        assert TcpProto._parse_mss_option(b"\x02\x09") is None
        assert TcpProto._parse_mss_option(b"\x00\x02\x04\x05\xb4") is None
        assert TcpProto._parse_mss_option(
            b"\x01\x01\x02\x04\x05\xb4") == 1460


class TestNagle:
    def _small_writes(self, nodelay: bool):
        engine, wire, a, b = make_pair()
        got = []

        def on_accept(tcb):
            tcb.on_data = got.append
        b.tcp.listen(PORT, on_accept)
        box = {}
        a.run_kernel(lambda: box.setdefault("t", a.tcp.connect(b.my_ip, PORT)))
        engine.run()
        client = box["t"]
        client.nodelay = nodelay

        def has_payload(packet):
            return len(packet) > 40  # IP (20) + TCP (>=20) + data
        data_segments_before = sum(
            1 for _s, p, _h in wire.sent if has_payload(p))

        def burst():
            for _ in range(10):
                client.send(b"tiny")
        a.run_kernel(burst)
        engine.run()
        data_segments = sum(
            1 for _s, p, _h in wire.sent if has_payload(p)) - data_segments_before
        return b"".join(got), data_segments, client

    def test_nagle_coalesces_small_writes(self):
        delivered, segments, _client = self._small_writes(nodelay=False)
        assert delivered == b"tiny" * 10
        # First write flies immediately; the rest coalesce behind the ACK.
        assert segments <= 3

    def test_nodelay_sends_each_write(self):
        delivered, segments, _client = self._small_writes(nodelay=True)
        assert delivered == b"tiny" * 10
        assert segments >= 9

    def test_nagle_never_delays_when_idle(self):
        """With nothing in flight a small write goes out at once."""
        engine, wire, a, b = make_pair()
        client, server = establish(engine, a, b)
        assert not client.nodelay
        before = len(wire.sent)
        a.run_kernel(lambda: client.send(b"x"))
        # Well before any delayed-ACK or retransmit timer could matter,
        # the segment is on the wire.
        engine.run(until=engine.now + 300.0)
        assert len(wire.sent) == before + 1
        engine.run()
