"""Tests for the SPIN event dispatcher (paper section 2)."""

import pytest

from repro.spin import DispatchError


@pytest.fixture
def dispatcher(kernel):
    return kernel.dispatcher


def charged(kernel, fn):
    """Run plain fn under an accumulator; return (result, charged us)."""
    marker = kernel.cpu.begin()
    result = fn()
    return result, kernel.cpu.end(marker)


class TestDeclare:
    def test_declare_returns_same_event(self, dispatcher):
        assert dispatcher.declare("X.Recv") is dispatcher.declare("X.Recv")

    def test_distinct_names_distinct_events(self, dispatcher):
        assert dispatcher.declare("A.Recv") is not dispatcher.declare("B.Recv")


class TestInstallAndRaise:
    def test_handler_invoked_with_args(self, kernel, dispatcher):
        event = dispatcher.declare("X")
        seen = []
        dispatcher.install(event, lambda a, b: seen.append((a, b)))
        matched, _cost = charged(
            kernel, lambda: dispatcher.raise_event(event, 1, 2))
        assert matched == 1
        assert seen == [(1, 2)]

    def test_multiple_handlers_all_fire(self, kernel, dispatcher):
        """'More than one handler may be installed on an event.'"""
        event = dispatcher.declare("X")
        seen = []
        for tag in "abc":
            dispatcher.install(event, lambda tag=tag: seen.append(tag))
        matched, _ = charged(kernel, lambda: dispatcher.raise_event(event))
        assert matched == 3
        assert seen == ["a", "b", "c"]

    def test_guard_filters(self, kernel, dispatcher):
        event = dispatcher.declare("X")
        seen = []
        dispatcher.install(event, lambda v: seen.append(("even", v)),
                           guard=lambda v: v % 2 == 0)
        dispatcher.install(event, lambda v: seen.append(("odd", v)),
                           guard=lambda v: v % 2 == 1)
        charged(kernel, lambda: dispatcher.raise_event(event, 4))
        charged(kernel, lambda: dispatcher.raise_event(event, 7))
        assert seen == [("even", 4), ("odd", 7)]

    def test_guard_rejections_counted(self, kernel, dispatcher):
        event = dispatcher.declare("X")
        handle = dispatcher.install(event, lambda v: None,
                                    guard=lambda v: False)
        charged(kernel, lambda: dispatcher.raise_event(event, 1))
        assert handle.guard_rejections == 1
        assert handle.invocations == 0

    def test_raise_requires_event_capability(self, kernel, dispatcher):
        with pytest.raises(DispatchError):
            charged(kernel, lambda: dispatcher.raise_event("X.Recv"))

    def test_install_requires_event_capability(self, dispatcher):
        with pytest.raises(DispatchError):
            dispatcher.install("X.Recv", lambda: None)

    def test_invalid_mode_rejected(self, dispatcher):
        event = dispatcher.declare("X")
        with pytest.raises(DispatchError):
            dispatcher.install(event, lambda: None, mode="fiber")

    def test_invalid_time_limit_rejected(self, dispatcher):
        event = dispatcher.declare("X")
        with pytest.raises(DispatchError):
            dispatcher.install(event, lambda: None, time_limit=0)


class TestUninstall:
    def test_uninstalled_handler_stops_firing(self, kernel, dispatcher):
        event = dispatcher.declare("X")
        seen = []
        handle = dispatcher.install(event, lambda: seen.append(1))
        charged(kernel, lambda: dispatcher.raise_event(event))
        handle.uninstall()
        charged(kernel, lambda: dispatcher.raise_event(event))
        assert seen == [1]

    def test_double_uninstall_rejected(self, dispatcher):
        event = dispatcher.declare("X")
        handle = dispatcher.install(event, lambda: None)
        handle.uninstall()
        with pytest.raises(DispatchError):
            handle.uninstall()

    def test_uninstall_during_raise_is_safe(self, kernel, dispatcher):
        event = dispatcher.declare("X")
        handles = []

        def self_removing():
            handles[0].uninstall()
        handles.append(dispatcher.install(event, self_removing))
        seen = []
        dispatcher.install(event, lambda: seen.append("other"))
        charged(kernel, lambda: dispatcher.raise_event(event))
        assert seen == ["other"]


class TestCosts:
    def test_per_handler_cost_charged(self, kernel, dispatcher):
        event = dispatcher.declare("X")
        for _ in range(4):
            dispatcher.install(event, lambda: None)
        _, cost = charged(kernel, lambda: dispatcher.raise_event(event))
        assert cost == pytest.approx(4 * kernel.costs.dispatch_per_handler)

    def test_guard_eval_cost_charged(self, kernel, dispatcher):
        event = dispatcher.declare("X")
        dispatcher.install(event, lambda: None, guard=lambda: False)
        _, cost = charged(kernel, lambda: dispatcher.raise_event(event))
        assert cost == pytest.approx(kernel.costs.guard_eval)

    def test_handler_internal_charges_flow_up(self, kernel, dispatcher):
        event = dispatcher.declare("X")

        def worker():
            kernel.cpu.charge(50.0, "handler-work")
        dispatcher.install(event, worker)
        _, cost = charged(kernel, lambda: dispatcher.raise_event(event))
        assert cost == pytest.approx(50.0 + kernel.costs.dispatch_per_handler)


class TestTimeLimits:
    def test_over_budget_handler_terminated(self, kernel, dispatcher):
        """Paper sec. 3.3: exceeding the allotment terminates the handler
        and only the allotment is consumed."""
        event = dispatcher.declare("X")

        def hog():
            kernel.cpu.charge(500.0, "hog")
        handle = dispatcher.install(event, hog, time_limit=30.0)
        _, cost = charged(kernel, lambda: dispatcher.raise_event(event))
        assert handle.terminations == 1
        assert cost == pytest.approx(30.0 + kernel.costs.dispatch_per_handler)

    def test_within_budget_not_terminated(self, kernel, dispatcher):
        event = dispatcher.declare("X")

        def modest():
            kernel.cpu.charge(10.0, "ok")
        handle = dispatcher.install(event, modest, time_limit=30.0)
        charged(kernel, lambda: dispatcher.raise_event(event))
        assert handle.terminations == 0


class TestContainment:
    def test_handler_exception_contained(self, kernel, dispatcher):
        """An extension failure must not take down the kernel."""
        event = dispatcher.declare("X")

        def broken():
            raise RuntimeError("extension bug")
        handle = dispatcher.install(event, broken)
        seen = []
        dispatcher.install(event, lambda: seen.append("survivor"))
        matched, _ = charged(kernel, lambda: dispatcher.raise_event(event))
        assert matched == 2
        assert seen == ["survivor"]
        assert handle.failures == 1
        assert isinstance(handle.last_error, RuntimeError)

    def test_guard_exception_treated_as_no_match(self, kernel, dispatcher):
        event = dispatcher.declare("X")

        def bad_guard():
            raise ValueError("guard bug")
        handle = dispatcher.install(event, lambda: None, guard=bad_guard)
        matched, _ = charged(kernel, lambda: dispatcher.raise_event(event))
        assert matched == 0
        assert handle.failures == 1


class TestThreadMode:
    def test_thread_handler_runs_in_new_thread(self, kernel, engine):
        dispatcher = kernel.dispatcher
        event = dispatcher.declare("X")
        ran_at = []

        def handler():
            ran_at.append(engine.now)
            kernel.cpu.charge(10.0, "work")
        dispatcher.install(event, handler, mode="thread")

        def raiser():
            yield from kernel.kernel_path(
                lambda: dispatcher.raise_event(event))
            return engine.now
        raised_at = engine.run_process(raiser())
        engine.run()
        # The handler ran after the raising path completed.
        assert ran_at and ran_at[0] >= raised_at

    def test_thread_mode_charges_spawn(self, kernel, engine):
        dispatcher = kernel.dispatcher
        event = dispatcher.declare("X")
        dispatcher.install(event, lambda: None, mode="thread")
        marker = kernel.cpu.begin()
        dispatcher.raise_event(event)
        cost = kernel.cpu.end(marker)
        kernel.take_deferred()  # discard the spawn action
        expected = (kernel.costs.dispatch_per_handler +
                    kernel.costs.thread_spawn + kernel.costs.process_wakeup)
        assert cost == pytest.approx(expected)
