"""Tests for the CPU model and the charge/consume discipline."""

import pytest

from repro.hw import ALPHA_21064, CPU, ChargeError, INTERRUPT_PRIORITY, THREAD_PRIORITY
from repro.hw.host import Host


class EchoHost(Host):
    def frame_arrived(self, nic, frame):
        pass


@pytest.fixture
def cpu(engine):
    return CPU(engine)


@pytest.fixture
def host(engine):
    return EchoHost(engine, "h")


class TestAccumulator:
    def test_begin_charge_end(self, cpu):
        marker = cpu.begin()
        cpu.charge(10.0)
        cpu.charge(5.0, "driver")
        assert cpu.end(marker) == 15.0

    def test_charge_without_begin_rejected(self, cpu):
        with pytest.raises(ChargeError):
            cpu.charge(1.0)

    def test_negative_charge_rejected(self, cpu):
        cpu.begin()
        with pytest.raises(ValueError):
            cpu.charge(-1.0)

    def test_nested_accumulators_are_independent(self, cpu):
        outer = cpu.begin()
        cpu.charge(10.0)
        inner = cpu.begin()
        cpu.charge(3.0)
        assert cpu.end(inner) == 3.0
        assert cpu.end(outer) == 10.0

    def test_mismatched_end_rejected(self, cpu):
        outer = cpu.begin()
        cpu.begin()
        with pytest.raises(ChargeError):
            cpu.end(outer)

    def test_category_accounting(self, cpu):
        cpu.begin()
        cpu.charge(10.0, "driver")
        cpu.charge(5.0, "driver")
        cpu.charge(2.0, "protocol")
        assert cpu.category_times["driver"] == 15.0
        assert cpu.category_fraction("driver") == pytest.approx(15 / 17)

    def test_charge_bytes(self, cpu):
        cpu.begin()
        cpu.charge_bytes(1000, 0.025)
        assert cpu.category_times["copy"] == pytest.approx(25.0)

    def test_recharge_skips_categories(self, cpu):
        marker = cpu.begin()
        cpu.recharge(12.0)
        assert cpu.end(marker) == 12.0
        assert cpu.category_times == {}


class TestConsume:
    def test_consume_advances_time_and_busy(self, engine, cpu):
        def proc():
            yield from cpu.consume(40.0)
        engine.run_process(proc())
        assert engine.now == 40.0
        assert cpu.busy_time == 40.0

    def test_zero_consume_is_noop(self, engine, cpu):
        def proc():
            yield from cpu.consume(0.0)
            return "ok"
        assert engine.run_process(proc()) == "ok"
        assert engine.now == 0.0

    def test_consumers_serialize(self, engine, cpu):
        finish = []

        def worker(tag):
            yield from cpu.consume(10.0)
            finish.append((tag, engine.now))
        engine.process(worker("a"))
        engine.process(worker("b"))
        engine.run()
        assert finish == [("a", 10.0), ("b", 20.0)]

    def test_interrupt_priority_served_first(self, engine, cpu):
        order = []

        def holder():
            yield from cpu.consume(10.0)
            order.append("holder")

        def thread():
            yield from cpu.consume(5.0, THREAD_PRIORITY)
            order.append("thread")

        def interrupt():
            yield engine.timeout(1.0)
            yield from cpu.consume(5.0, INTERRUPT_PRIORITY)
            order.append("interrupt")
        engine.process(holder())
        engine.process(thread())
        engine.process(interrupt())
        engine.run()
        assert order == ["holder", "interrupt", "thread"]

    def test_execute_runs_fn_and_consumes(self, engine, cpu):
        def work(x):
            cpu.charge(25.0)
            return x * 2

        def proc():
            result = yield from cpu.execute(work, (21,))
            return result
        assert engine.run_process(proc()) == 42
        assert engine.now == 25.0


class TestUtilization:
    def test_utilization_since(self, engine, cpu):
        def proc():
            yield from cpu.consume(30.0)
            yield engine.timeout(70.0)
        sample = cpu.sample()
        engine.run_process(proc())
        assert cpu.utilization_since(*sample) == pytest.approx(0.3)

    def test_utilization_zero_window(self, cpu):
        sample = cpu.sample()
        assert cpu.utilization_since(*sample) == 0.0


class TestKernelPath:
    def test_acquires_cpu_before_running(self, engine, host):
        """Causality: plain work waits for the CPU under contention."""
        order = []

        def hog():
            yield from host.cpu.consume(50.0)

        def path_fn():
            order.append(engine.now)
        engine.process(hog())

        def runner():
            yield from host.kernel_path(path_fn)
        engine.run_process(runner())
        assert order == [50.0]  # ran only after the hog released the CPU

    def test_deferred_actions_after_hold(self, engine, host):
        times = []

        def work():
            host.cpu.charge(20.0)
            host.defer(lambda: times.append(engine.now))

        def runner():
            yield from host.kernel_path(work)
        engine.run_process(runner())
        assert times == [20.0]

    def test_exception_still_pops_accumulator(self, engine, host):
        def broken():
            host.cpu.charge(5.0)
            raise ValueError("bug")

        def runner():
            yield from host.kernel_path(broken)
        with pytest.raises(ValueError):
            engine.run_process(runner())
        assert host.cpu.open_accumulators == 0

    def test_timer_fires_as_kernel_path(self, engine, host):
        fired = []
        host.set_timer(100.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [100.0]

    def test_timer_cancel(self, engine, host):
        fired = []
        timer = host.set_timer(100.0, lambda: fired.append(1))
        timer.cancel()
        engine.run()
        assert fired == []
        assert not timer.fired

    def test_scaled_cost_table(self):
        slower = ALPHA_21064.scaled(2.0)
        assert slower.context_switch == ALPHA_21064.context_switch * 2

    def test_cost_table_replace(self):
        custom = ALPHA_21064.replace(syscall_trap=99.0)
        assert custom.syscall_trap == 99.0
        assert custom.copy_per_byte == ALPHA_21064.copy_per_byte
