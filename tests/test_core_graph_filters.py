"""Tests for the protocol graph structure and the packet-filter guards."""

import pytest

from repro.core import (
    GraphError,
    ProtocolGraph,
    ethertype_guard,
    ip_protocol_guard,
    tcp_port_guard,
    transport_redirect_guard,
    udp_dst_port_guard,
)
from repro.lang import VIEW
from repro.net.headers import (
    ETHERNET_HEADER,
    IPPROTO_TCP,
    IPPROTO_UDP,
    TCP_HEADER,
    UDP_HEADER,
)
from repro.spin import Mbuf


@pytest.fixture
def graph(kernel):
    return ProtocolGraph(kernel)


def handle_stub(kernel, label="h"):
    event = kernel.dispatcher.declare("Stub.%s" % label)
    return kernel.dispatcher.install(event, lambda *a: None, label=label)


class TestGraphStructure:
    def test_add_nodes_and_edges(self, kernel, graph):
        device = graph.add_node("ln0", "device")
        eth = graph.add_node("ethernet", "protocol")
        edge = graph.add_edge(device, eth, handle_stub(kernel))
        assert graph.edge_count() == 1
        assert edge in device.out_edges
        assert edge in eth.in_edges

    def test_duplicate_node_rejected(self, graph):
        graph.add_node("x", "protocol")
        with pytest.raises(GraphError):
            graph.add_node("x", "protocol")

    def test_unknown_kind_rejected(self, graph):
        with pytest.raises(GraphError):
            graph.add_node("x", "mystery")

    def test_missing_node_lookup(self, graph):
        with pytest.raises(GraphError, match="no node"):
            graph.node("ghost")

    def test_remove_edge_uninstalls_handler(self, kernel, graph):
        a = graph.add_node("a", "protocol")
        b = graph.add_node("b", "extension")
        handle = handle_stub(kernel)
        edge = graph.add_edge(a, b, handle)
        graph.remove_edge(edge)
        assert not handle.installed
        assert graph.edge_count() == 0
        assert graph.removals == 1

    def test_remove_extension_node_removes_edges(self, kernel, graph):
        a = graph.add_node("a", "protocol")
        ext = graph.add_node("ext", "extension")
        graph.add_edge(a, ext, handle_stub(kernel))
        graph.remove_node("ext")
        assert graph.edge_count() == 0
        assert "ext" not in graph.nodes

    def test_protocol_nodes_not_removable(self, graph):
        graph.add_node("ip", "protocol")
        with pytest.raises(GraphError, match="extension"):
            graph.remove_node("ip")

    def test_render_mentions_guards(self, kernel, graph):
        a = graph.add_node("eth", "protocol")
        b = graph.add_node("ip", "protocol")
        event = kernel.dispatcher.declare("E")
        handle = kernel.dispatcher.install(
            event, lambda *a: None, guard=ethertype_guard(0x0800))
        graph.add_edge(a, b, handle)
        text = graph.render()
        assert "ethertype_0x0800" in text
        assert "eth" in text and "ip" in text


def eth_frame(ethertype: int) -> Mbuf:
    buf = bytearray(60)
    VIEW(buf, ETHERNET_HEADER).type = ethertype
    return Mbuf.from_bytes(buf).freeze()


class TestGuards:
    def test_ethertype_guard(self):
        guard = ethertype_guard(0x0800)
        assert guard(None, eth_frame(0x0800))
        assert not guard(None, eth_frame(0x0806))

    def test_ethertype_guard_runt_frame(self):
        guard = ethertype_guard(0x0800)
        assert not guard(None, Mbuf.from_bytes(b"tiny").freeze())

    def test_ip_protocol_guard(self):
        guard = ip_protocol_guard(IPPROTO_UDP)
        assert guard(IPPROTO_UDP, None, 0, 0, 0)
        assert not guard(IPPROTO_TCP, None, 0, 0, 0)

    def test_udp_port_guard(self):
        guard = udp_dst_port_guard(5000)
        assert guard(None, 0, 0, 0, 0, 5000)
        assert not guard(None, 0, 0, 0, 0, 5001)

    def _tcp_packet(self, dst_port: int) -> Mbuf:
        buf = bytearray(40)
        VIEW(buf, TCP_HEADER, offset=0).dst_port = dst_port
        return Mbuf.from_bytes(buf).freeze()

    def test_tcp_port_guard(self):
        guard = tcp_port_guard({80, 443})
        assert guard(self._tcp_packet(80), 0, 0, 0)
        assert guard(self._tcp_packet(443), 0, 0, 0)
        assert not guard(self._tcp_packet(22), 0, 0, 0)

    def test_redirect_guard_matches_protocol_and_port(self):
        guard = transport_redirect_guard(IPPROTO_TCP, 8080)
        packet = self._tcp_packet(8080)
        assert guard(IPPROTO_TCP, packet, 0, 0, 0)
        assert not guard(IPPROTO_UDP, packet, 0, 0, 0)
        assert not guard(IPPROTO_TCP, self._tcp_packet(9090), 0, 0, 0)

    def test_redirect_guard_udp(self):
        buf = bytearray(28)
        VIEW(buf, UDP_HEADER).dst_port = 53
        packet = Mbuf.from_bytes(buf).freeze()
        guard = transport_redirect_guard(IPPROTO_UDP, 53)
        assert guard(IPPROTO_UDP, packet, 0, 0, 0)

    def test_redirect_guard_rejects_other_protocols(self):
        with pytest.raises(ValueError):
            transport_redirect_guard(1, 80)  # ICMP

    def test_guards_work_on_frozen_packets(self):
        """Guards VIEW READONLY packets without copying (Figure 2)."""
        frame = eth_frame(0x0800)
        assert frame.frozen
        assert ethertype_guard(0x0800)(None, frame)
