"""Tests for repro.obs: registry, CPU profiler, span tracer, schema, wiring.

The two load-bearing guarantees:

* **Zero perturbation when off** -- attaching nothing leaves every
  simulated-time fingerprint bit-identical (the profiler equivalence
  test runs the same workload with and without instrumentation and
  compares fingerprints with ``==``, no tolerance).
* **Exact accounting when on** -- per-category totals are bit-equal to
  the CPU's own ``category_times`` and the profiler's consumed-time fold
  is bit-equal to summed ``busy_time`` across hosts.
"""

import json

import pytest
from hypothesis import given, strategies as st

from repro.bench.testbed import build_testbed
from repro.bench.wallclock import run_workload
from repro.obs import (
    CpuProfiler, DuplicateMetricError, MetricError, MetricsRegistry,
    SpanTracer, install_hook, instrument_testbed, uninstall_hook,
    undocumented_metrics)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_counter_inc_and_read(self):
        reg = MetricsRegistry()
        c = reg.counter("a.hits", "hits")
        c.inc()
        c.inc(3)
        assert c.read() == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_names_must_be_dotted_lowercase(self):
        reg = MetricsRegistry()
        for bad in ("plain", "Upper.case", "a..b", "a.b-c", "", "a.b."):
            with pytest.raises(MetricError):
                reg.counter(bad)

    def test_duplicate_name_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a.b", "first")
        with pytest.raises(DuplicateMetricError):
            reg.counter("a.b", "again")
        with pytest.raises(DuplicateMetricError):
            reg.histogram("a.b", bounds=[1.0])

    def test_source_aggregates_across_registrations(self):
        # Per-host rollup: registering the same gauge name with another
        # source fn sums the sources (hw.cpu.busy_us over N hosts).
        reg = MetricsRegistry()
        reg.source("hw.x.total", lambda: 2.0)
        reg.source("hw.x.total", lambda: 3.0)
        assert reg.get("hw.x.total").read() == 5.0
        reg.counter("hw.x.count")
        with pytest.raises(DuplicateMetricError):
            reg.source("hw.x.count", lambda: 0)

    def test_disabled_registry_declares_but_null_instruments(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("a.b", "documented even when disabled")
        c.inc(10)
        assert c.read() == 0
        assert "a.b" in reg
        assert reg.snapshot() == {}

    def test_snapshot_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("a.c", "c").inc(7)
        reg.gauge("a.g", "g").set(1.5)
        h = reg.histogram("a.h", bounds=[1.0, 10.0], description="h")
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        decoded = json.loads(reg.to_json())
        assert decoded == reg.snapshot()
        assert decoded["a.c"] == {"type": "counter", "value": 7}
        assert decoded["a.g"]["value"] == 1.5
        assert decoded["a.h"]["value"]["counts"] == [1, 1, 1]
        assert decoded["a.h"]["value"]["count"] == 3

    def test_histogram_rejects_unsorted_bounds(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.histogram("a.h", bounds=[1.0, 1.0])
        with pytest.raises(MetricError):
            reg.histogram("a.h2", bounds=[5.0, 1.0])
        with pytest.raises(MetricError):
            reg.histogram("a.h3", bounds=[])


class TestHistogramProperties:
    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                              allow_nan=False), max_size=200))
    def test_counts_partition_observations(self, values):
        reg = MetricsRegistry()
        h = reg.histogram("p.h", bounds=[-10.0, 0.0, 10.0])
        for v in values:
            h.observe(v)
        r = h.read()
        assert sum(r["counts"]) == r["count"] == len(values)
        assert len(r["counts"]) == len(r["bounds"]) + 1
        assert r["sum"] == pytest.approx(sum(values), rel=1e-9, abs=1e-6)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=50))
    def test_bucket_assignment_monotone(self, values):
        # An observation lands in bucket i iff bounds[i-1] <= v < bounds[i]:
        # recomputing membership per bucket must reproduce the counts.
        bounds = [10.0, 20.0, 50.0]
        reg = MetricsRegistry()
        h = reg.histogram("p.m", bounds=bounds)
        for v in values:
            h.observe(v)
        edges = [float("-inf")] + bounds + [float("inf")]
        expected = [sum(1 for v in values if edges[i] <= v < edges[i + 1])
                    for i in range(len(edges) - 1)]
        assert h.read()["counts"] == expected


# ---------------------------------------------------------------------------
# profiler
# ---------------------------------------------------------------------------

def _profiled_run(name):
    """Run a quick workload with a profiler attached; returns (record, prof)."""
    state = {}

    def instrument(bed):
        prof = CpuProfiler()
        prof.attach(bed.hosts)
        state["profiler"] = prof

    record = run_workload(name, quick=True, instrument=instrument)
    return record, state["profiler"]


class TestProfiler:
    def test_off_by_default_fingerprints_identical(self):
        plain = run_workload("udp_pingpong", quick=True)
        profiled, _ = _profiled_run("udp_pingpong")
        assert profiled["fingerprint"] == plain["fingerprint"]
        assert profiled["metrics"] == plain["metrics"]

    def test_categories_bit_exact_and_busy_reconciles(self):
        _, prof = _profiled_run("udp_pingpong")
        merged = {}
        for hook in prof._hooks:
            for category, amount in hook.cpu.category_times.items():
                merged[category] = merged.get(category, 0.0) + amount
        assert prof.categories() == merged
        # The consumed-time fold replays busy_time's float additions in
        # the same order, so the reconciliation is exact, not approximate.
        assert prof.consumed_us() == prof.busy_us()
        assert sum(prof.categories().values()) == pytest.approx(
            prof.busy_us(), rel=1e-12)

    def test_folded_output_deterministic(self):
        _, first = _profiled_run("udp_pingpong")
        _, second = _profiled_run("udp_pingpong")
        text = first.folded_text()
        assert text == second.folded_text()
        assert text.splitlines() == sorted(text.splitlines())
        for line in text.splitlines():
            stack, value = line.rsplit(" ", 1)
            assert int(value) > 0
            assert stack.split(";")[0].startswith("spin-h")

    def test_folded_has_paper_categories(self):
        _, prof = _profiled_run("tcp_bulk")
        categories = {line.rsplit(" ", 1)[0].split(";")[-1]
                      for line in prof.folded_lines()}
        for wanted in ("checksum", "dispatch", "copy"):
            assert wanted in categories
        assert categories & {"driver", "driver-pio"}

    def test_detach_restores_plain_dict(self):
        bed = build_testbed("spin", "ethernet")
        prof = CpuProfiler()
        prof.attach(bed.hosts)
        cpu = bed.hosts[0].cpu
        assert cpu.profile is not None
        assert type(cpu.category_times) is not dict
        prof.detach()
        assert cpu.profile is None
        assert type(cpu.category_times) is dict

    def test_install_uninstall_preserves_times(self):
        bed = build_testbed("spin", "ethernet")
        cpu = bed.hosts[0].cpu
        cpu.category_times["protocol"] = 4.5
        install_hook(cpu, "h")
        assert cpu.category_times["protocol"] == 4.5
        cpu.category_times["protocol"] += 1.0
        uninstall_hook(cpu)
        assert cpu.category_times["protocol"] == 5.5


# ---------------------------------------------------------------------------
# span tracer
# ---------------------------------------------------------------------------

class TestSpanTracer:
    def _run(self, limit=4096):
        state = {}

        def instrument(bed):
            tracer = SpanTracer(bed.engine, limit=limit)
            tracer.attach(bed.hosts, nics=bed.nics)
            state["tracer"] = tracer

        record = run_workload("udp_pingpong", quick=True,
                              instrument=instrument)
        return record, state["tracer"]

    def test_records_cpu_and_wire_spans(self):
        record, tracer = self._run()
        kinds = {span.kind for span in tracer.records}
        assert kinds >= {"cpu", "tx", "rx"}
        text = tracer.render(last=40)
        assert "us" in text and len(text.splitlines()) == 40

    def test_ring_buffer_caps_memory(self):
        _, tracer = self._run(limit=32)
        assert len(tracer.records) == 32
        assert tracer.dropped_records > 0

    def test_zero_perturbation(self):
        plain = run_workload("udp_pingpong", quick=True)
        record, _ = self._run()
        assert record["fingerprint"] == plain["fingerprint"]


# ---------------------------------------------------------------------------
# schema + wiring
# ---------------------------------------------------------------------------

class TestSchemaAndWiring:
    @pytest.mark.parametrize("os_name", ["spin", "unix"])
    def test_every_registered_metric_documented(self, os_name):
        bed = build_testbed(os_name, "ethernet")
        registry = instrument_testbed(bed)
        assert undocumented_metrics(registry) == []

    def test_wallclock_records_carry_metrics(self):
        record = run_workload("dispatcher_micro", quick=True)
        metrics = record["metrics"]
        assert metrics["spin.dispatcher.raises"]["value"] == record["scale"]

    def test_chaos_verdict_carries_metrics(self):
        from repro.chaos import build_quick_corpus, run_campaign
        spec = build_quick_corpus(count=1)[0]
        verdict = run_campaign(spec)
        assert "metrics" in verdict
        assert any(name.startswith("sim.engine.")
                   for name in verdict["metrics"])

    def test_snapshot_matches_component_counters(self):
        bed = build_testbed("spin", "ethernet")
        registry = instrument_testbed(bed)
        snap = registry.snapshot()
        total_tx = sum(nic.tx_frames for nic in bed.nics)
        assert snap["hw.nic.tx_frames"]["value"] == total_tx
        assert snap["sim.engine.events_processed"]["value"] == (
            bed.engine.events_processed)
