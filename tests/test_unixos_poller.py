"""Tests for the select()-style Poller."""

import pytest

from repro.unixos import Poller, SocketError


class TestPoller:
    def test_returns_ready_udp_socket(self, unix_pair):
        bed = unix_pair
        engine = bed.engine
        poller = Poller(bed.hosts[1])

        def server():
            one = bed.sockets[1].udp_socket()
            two = bed.sockets[1].udp_socket()
            yield from one.bind(7001)
            yield from two.bind(7002)
            ready = yield from poller.wait_readable([one, two])
            data, _addr = yield from ready[0].recvfrom()
            return ready[0].port, data

        def client():
            sock = bed.sockets[0].udp_socket()
            yield from sock.bind(6000)
            yield from sock.sendto(b"pick me", (bed.ip(1), 7002))
        engine.process(client(), name="client")
        port, data = engine.run_process(server(), name="server")
        assert (port, data) == (7002, b"pick me")

    def test_immediate_return_when_already_ready(self, unix_pair):
        bed = unix_pair
        engine = bed.engine
        poller = Poller(bed.hosts[1])

        def server():
            sock = bed.sockets[1].udp_socket()
            yield from sock.bind(7001)
            # Let a datagram arrive first.
            yield engine.timeout(5_000.0)
            started = engine.now
            ready = yield from poller.wait_readable([sock])
            return ready, engine.now - started

        def client():
            sock = bed.sockets[0].udp_socket()
            yield from sock.bind(6000)
            yield from sock.sendto(b"early", (bed.ip(1), 7001))
        engine.process(client(), name="client")
        ready, waited = engine.run_process(server(), name="server")
        assert len(ready) == 1
        assert waited < 500.0  # no blocking, just the syscall cost

    def test_multiplexes_udp_and_tcp_listener(self, unix_pair):
        bed = unix_pair
        engine = bed.engine
        poller = Poller(bed.hosts[1])
        events = []

        def server():
            udp = bed.sockets[1].udp_socket()
            yield from udp.bind(7001)
            listener = bed.sockets[1].tcp_socket()
            yield from listener.listen(8000)
            for _ in range(2):
                ready = yield from poller.wait_readable([udp, listener])
                for sock in ready:
                    if sock is udp:
                        data, _ = yield from udp.recvfrom()
                        events.append(("udp", data))
                    else:
                        conn = yield from listener.accept()
                        events.append(("tcp", conn.tcb.raddr))

        def client():
            udp = bed.sockets[0].udp_socket()
            yield from udp.bind(6000)
            yield from udp.sendto(b"dgram", (bed.ip(1), 7001))
            tcp = bed.sockets[0].tcp_socket()
            yield from tcp.connect((bed.ip(1), 8000))
        engine.process(server(), name="server")
        engine.run_process(client(), name="client")
        engine.run(until=engine.now + 100_000.0)
        assert ("udp", b"dgram") in events
        assert ("tcp", bed.ip(0)) in events

    def test_tcp_eof_is_readable(self, unix_pair):
        bed = unix_pair
        engine = bed.engine
        poller = Poller(bed.hosts[1])
        outcome = []

        def server():
            listener = bed.sockets[1].tcp_socket()
            yield from listener.listen(8000)
            conn = yield from listener.accept()
            ready = yield from poller.wait_readable([conn])
            data = yield from conn.recv()
            outcome.append((bool(ready), data))

        def client():
            sock = bed.sockets[0].tcp_socket()
            yield from sock.connect((bed.ip(1), 8000))
            yield from sock.close()
        engine.process(server(), name="server")
        engine.run_process(client(), name="client")
        engine.run(until=engine.now + 200_000.0)
        assert outcome == [(True, b"")]

    def test_empty_socket_list_rejected(self, unix_pair):
        poller = Poller(unix_pair.hosts[0])
        with pytest.raises(SocketError):
            next(poller.wait_readable([]))

    def test_poll_charges_a_trap(self, unix_pair):
        bed = unix_pair
        engine = bed.engine
        host = bed.hosts[1]
        poller = Poller(host)

        def server():
            sock = bed.sockets[1].udp_socket()
            yield from sock.bind(7001)
            yield engine.timeout(1_000.0)
            before = host.cpu.busy_time
            yield from poller.wait_readable([sock])
            return host.cpu.busy_time - before

        def client():
            sock = bed.sockets[0].udp_socket()
            yield from sock.bind(6000)
            yield from sock.sendto(b"x", (bed.ip(1), 7001))
        engine.process(client(), name="client")
        cost = engine.run_process(server(), name="server")
        assert cost >= host.costs.syscall_trap
