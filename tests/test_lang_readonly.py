"""Tests for READONLY buffers (paper section 3.4, Figure 4)."""

import pytest

from repro.lang import ReadOnlyBuffer, ReadOnlyViolation, readonly


class TestReads:
    def test_length(self):
        assert len(readonly(b"abcdef")) == 6

    def test_indexing(self):
        buf = readonly(b"abc")
        assert buf[0] == ord("a")
        assert buf[-1] == ord("c")

    def test_slicing_returns_bytes(self):
        buf = readonly(b"abcdef")
        assert buf[1:3] == b"bc"
        assert isinstance(buf[1:3], bytes)

    def test_iteration(self):
        assert list(readonly(b"ab")) == [ord("a"), ord("b")]

    def test_equality_with_bytes(self):
        assert readonly(b"xy") == b"xy"
        assert readonly(b"xy") == bytearray(b"xy")
        assert readonly(b"xy") == readonly(b"xy")
        assert readonly(b"xy") != b"yz"

    def test_bytes_conversion(self):
        assert bytes(readonly(bytearray(b"ab"))) == b"ab"

    def test_hashable(self):
        assert hash(readonly(b"ab")) == hash(readonly(b"ab"))

    def test_wraps_memoryview(self):
        assert readonly(memoryview(b"ab"))[0] == ord("a")

    def test_idempotent(self):
        buf = readonly(b"ab")
        assert readonly(buf) is buf

    def test_rejects_non_buffer(self):
        with pytest.raises(TypeError):
            ReadOnlyBuffer([1, 2, 3])


class TestFigure4:
    """The BadPacketRecv / GoodPacketRecv pair from the paper."""

    def test_bad_packet_recv_rejected(self):
        """BadPacketRecv overwrites the packet: 'rejected by compiler'."""
        m_data = readonly(bytearray(64))
        with pytest.raises(ReadOnlyViolation):
            for i in range(len(m_data)):
                m_data[i] = 0

    def test_good_packet_recv_copies_first(self):
        """GoodPacketRecv copies, then overwrites the copy: legal."""
        m_data = readonly(bytearray(b"\x01" * 64))
        p = m_data.copy()
        for i in range(len(p)):
            p[i] = 0
        assert p == bytearray(64)
        assert m_data == b"\x01" * 64  # the original is untouched


class TestMutationRejection:
    @pytest.mark.parametrize("operation", [
        lambda b: b.__setitem__(0, 1),
        lambda b: b.__delitem__(0),
        lambda b: b.append(1),
        lambda b: b.extend(b"x"),
        lambda b: b.insert(0, 1),
        lambda b: b.pop(),
        lambda b: b.clear(),
        lambda b: b.remove(1),
        lambda b: b.reverse(),
        lambda b: b.sort(),
    ])
    def test_all_mutations_rejected(self, operation):
        buf = readonly(bytearray(b"\x01\x02\x03"))
        with pytest.raises(ReadOnlyViolation):
            operation(buf)

    def test_iadd_rejected(self):
        buf = readonly(b"ab")
        with pytest.raises(ReadOnlyViolation):
            buf += b"c"

    def test_raw_memoryview_is_readonly(self):
        raw = readonly(bytearray(4)).raw()
        assert raw.readonly
