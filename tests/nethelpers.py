"""Test harness: two protocol stacks joined by a direct, lossy wire.

For protocol-unit tests (IP fragmentation, TCP retransmission...) the full
NIC/driver machinery is noise; this harness wires two hosts' IP layers
together with a configurable delay and a drop filter, which makes loss
injection trivial.
"""

from repro.net.headers import ip_aton
from repro.net.ip import IpProto
from repro.net.tcp import TcpProto
from repro.net.udp import UdpProto
from repro.net.icmp import IcmpProto
from repro.sim import Engine
from repro.spin.kernel import SpinKernel


class DirectWire:
    """Delivers IP packets between registered stacks with a fixed delay."""

    def __init__(self, engine, delay_us: float = 40.0):
        self.engine = engine
        self.delay_us = delay_us
        self.stacks = {}          # ip address -> DirectStack
        self.sent = []            # (src_host, bytes, next_hop)
        #: test hook: drop_filter(packet_bytes, next_hop) -> True to drop
        self.drop_filter = None
        self.drops = 0

    def register(self, stack):
        self.stacks[stack.ip.my_ip] = stack

    def carry(self, sender, packet_bytes: bytes, next_hop: int) -> None:
        self.sent.append((sender, packet_bytes, next_hop))
        if self.drop_filter is not None and self.drop_filter(packet_bytes, next_hop):
            self.drops += 1
            return
        target = self.stacks.get(next_hop)
        if target is None:
            return

        def deliver():
            yield self.engine.timeout(self.delay_us)
            m = target.host.mbufs  # noqa: F841 - pool exists
            def work():
                chain = target.host.mbufs.from_bytes(packet_bytes)
                target.ip.input(chain, 0)
            yield from target.host.kernel_path(work)
        self.engine.process(deliver(), name="wire-deliver")


class _DirectLower:
    """The 'link adapter' face of the wire for one stack."""

    def __init__(self, wire: DirectWire, stack, mtu: int):
        self.wire = wire
        self.stack = stack
        self.mtu = mtu

    def send(self, m, next_hop: int) -> None:
        self.wire.carry(self.stack, m.to_bytes(), next_hop)


class DirectStack:
    """One host with IP/ICMP/UDP/TCP over the direct wire."""

    def __init__(self, engine, wire: DirectWire, name: str, address: str,
                 mtu: int = 1500):
        self.host = SpinKernel(engine, name)
        self.my_ip = ip_aton(address)
        self.lower = _DirectLower(wire, self, mtu)
        self.ip = IpProto(self.host, self.my_ip, self.lower)
        self.icmp = IcmpProto(self.host, self.ip)
        self.udp = UdpProto(self.host, self.ip)
        self.tcp = TcpProto(self.host, self.ip)
        from repro.net.headers import IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP

        def demux(protocol, m, off, src, dst):
            if protocol == IPPROTO_UDP:
                self.udp.input(m, off, src, dst)
            elif protocol == IPPROTO_TCP:
                self.tcp.input(m, off, src, dst)
            elif protocol == IPPROTO_ICMP:
                self.icmp.input(m, off, src, dst)
        self.ip.upcall = demux
        wire.register(self)

    def run_kernel(self, fn):
        """Spawn plain kernel code on this host."""
        return self.host.spawn_kernel_path(fn)


def make_pair(mtu: int = 1500, delay_us: float = 40.0):
    """(engine, wire, stack_a, stack_b) ready for protocol tests."""
    engine = Engine()
    wire = DirectWire(engine, delay_us)
    a = DirectStack(engine, wire, "host-a", "10.0.0.1", mtu=mtu)
    b = DirectStack(engine, wire, "host-b", "10.0.0.2", mtu=mtu)
    return engine, wire, a, b
