"""Tests for the SPIN kernel host: interrupt handling, priorities,
containment under live traffic."""

import pytest

from repro.core import Credential
from repro.hw import LanceEthernet, EthernetSegment
from repro.lang import ephemeral
from repro.spin import SpinKernel


@ephemeral
def _noop(m, off, src_ip, src_port, dst_ip, dst_port):
    pass


class TestInterruptPath:
    def test_interrupt_counter(self, spin_pair):
        bed = spin_pair
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)
        before = bed.hosts[1].interrupts_handled

        def send():
            yield from bed.hosts[0].kernel_path(
                lambda: sender.send(bytes(32), bed.ip(1), 7000))
        bed.engine.run_process(send())
        bed.engine.run()
        assert bed.hosts[1].interrupts_handled == before + 1

    def test_interrupt_charges_entry_and_exit(self, engine):
        kernel = SpinKernel(engine, "h1")
        peer = SpinKernel(engine, "h2")
        seg = EthernetSegment(engine)
        nic1 = LanceEthernet(engine, "e0", b"\x01" * 6)
        nic2 = LanceEthernet(engine, "e0", b"\x02" * 6)
        kernel.add_nic(nic1)
        peer.add_nic(nic2)
        seg.attach(nic1)
        seg.attach(nic2)
        peer.register_device_input(nic2, lambda nic, data: None)

        def send():
            yield from kernel.kernel_path(
                lambda: nic1.stage_tx(bytes(64), b"\x02" * 6))
        engine.run_process(send())
        engine.run()
        interrupt_work = peer.cpu.category_times.get("interrupt", 0.0)
        assert interrupt_work == pytest.approx(
            peer.costs.interrupt_entry + peer.costs.interrupt_exit)

    def test_interrupts_preempt_queued_threads(self, spin_pair):
        """Interrupt-level consumption is served before thread-level."""
        bed = spin_pair
        engine = bed.engine
        receiver = bed.hosts[1]
        order = []

        # A long thread-priority job keeps the receiver CPU busy...
        def hog():
            def work():
                receiver.cpu.charge(400.0, "hog")
            yield from receiver.kernel_path(work)
            order.append(("hog-done", engine.now))
        engine.process(hog())

        # ...then a second thread job queues behind it...
        def second():
            yield engine.timeout(1.0)

            def work():
                receiver.cpu.charge(100.0, "second")
            yield from receiver.kernel_path(work)
            order.append(("second-done", engine.now))
        engine.process(second())

        # ...and a packet arrives mid-hog: its interrupt must run before
        # the queued thread work.
        seen = []

        @ephemeral
        def handler(m, off, src_ip, src_port, dst_ip, dst_port):
            seen.append(engine.now)
        bed.stacks[1].udp_manager.bind(Credential("i"), 7002, handler)
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)

        def send():
            yield from bed.hosts[0].kernel_path(
                lambda: sender.send(bytes(16), bed.ip(1), 7002))
        engine.process(send())
        engine.run()
        assert seen, "packet never delivered"
        second_done = dict(order)["second-done"]
        assert seen[0] < second_done


class TestContainmentUnderTraffic:
    def test_broken_extension_does_not_stop_other_traffic(self, spin_pair):
        """A crashing extension handler is contained; the kernel's own
        protocols and other extensions keep flowing."""
        bed = spin_pair
        engine = bed.engine

        @ephemeral
        def broken(m, off, src_ip, src_port, dst_ip, dst_port):
            raise RuntimeError("extension bug")
        broken_ep = bed.stacks[1].udp_manager.bind(
            Credential("broken"), 7100, broken)

        healthy = []

        @ephemeral
        def fine(m, off, src_ip, src_port, dst_ip, dst_port):
            healthy.append(1)
        bed.stacks[1].udp_manager.bind(Credential("fine"), 7200, fine)

        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)

        def send_both():
            def work():
                sender.send(bytes(8), bed.ip(1), 7100)
                sender.send(bytes(8), bed.ip(1), 7200)
            yield from bed.hosts[0].kernel_path(work)
        engine.run_process(send_both())
        engine.run()
        assert healthy == [1]
        assert broken_ep.install.handle.failures == 1
        assert isinstance(broken_ep.install.handle.last_error, RuntimeError)

    def test_time_limited_handler_terminated_in_real_traffic(self, spin_pair):
        """An over-budget ephemeral handler is cut off at its allotment
        while processing a real packet (paper sec. 3.3)."""
        bed = spin_pair
        engine = bed.engine
        receiver = bed.hosts[1]

        @ephemeral
        def hog(m, off, src_ip, src_port, dst_ip, dst_port):
            receiver.cpu.charge(100_000.0, "runaway")
        endpoint = bed.stacks[1].udp_manager.bind(
            Credential("hog"), 7100, hog, time_limit=50.0)
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)
        busy_before = receiver.cpu.busy_time

        def send():
            yield from bed.hosts[0].kernel_path(
                lambda: sender.send(bytes(8), bed.ip(1), 7100))
        engine.run_process(send())
        engine.run()
        assert endpoint.install.handle.terminations == 1
        # The receiver paid the 50 us allotment, not the 100 ms runaway.
        assert receiver.cpu.busy_time - busy_before < 1_000.0


class TestDomainsOnKernel:
    def test_kernel_domain_exists(self, kernel):
        assert kernel.kernel_domain.name.endswith(".kernel")

    def test_export_interface_defaults_to_kernel_domain(self, kernel):
        from repro.spin import Interface
        kernel.export_interface(Interface("Test", {"X": 42}))
        assert kernel.kernel_domain.resolve("Test.X") == 42

    def test_linker_bound_to_host(self, kernel):
        assert kernel.linker.host is kernel
