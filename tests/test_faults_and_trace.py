"""Failure injection and packet tracing.

TCP must deliver byte-exact streams over lossy and corrupting wires; UDP
checksums must catch wire corruption; the tracer must see and decode the
traffic that made it happen.
"""

import pytest

from repro.bench.testbed import build_testbed
from repro.core import Credential
from repro.lang import ephemeral
from repro.net.trace import PacketTracer, decode_frame
from repro.sim import Signal


@ephemeral
def _noop(m, off, src_ip, src_port, dst_ip, dst_port):
    pass


def tcp_transfer(bed, total=40_000, deadline_us=5_000_000.0):
    """Bulk TCP over the testbed; returns bytes received."""
    engine = bed.engine
    state = {"received": 0, "sent": 0}
    done = Signal(engine)

    def on_accept(tcb):
        def on_data(data):
            state["received"] += len(data)
            if state["received"] >= total:
                bed.hosts[1].defer(done.fire)
        tcb.on_data = on_data
    bed.stacks[1].tcp_manager.listen(Credential("sink"), 9000, on_accept)
    chunk = bytes(8192)

    def run():
        def connect():
            tcb = bed.stacks[0].tcp_manager.connect(
                Credential("src"), bed.ip(1), 9000)

            def pump(_space=None):
                while state["sent"] < total and tcb.send_space > 0:
                    n = tcb.send(chunk[:total - state["sent"]])
                    state["sent"] += n
                    if n == 0:
                        break
            tcb.on_established = pump
            tcb.on_sendable = pump
        yield from bed.hosts[0].kernel_path(connect)
        yield done.wait()
    process = engine.process(run(), name="xfer")
    engine.run(until=engine.now + deadline_us)
    del process
    return state["received"]


class TestFaultInjection:
    def test_tcp_survives_five_percent_loss(self):
        bed = build_testbed("spin", "ethernet")
        bed.medium.set_fault_model(loss_rate=0.05, seed=42)
        received = tcp_transfer(bed, total=40_000)
        assert received >= 40_000
        assert bed.medium.frames_lost > 0  # faults actually happened

    def test_tcp_survives_corruption(self):
        """Corrupted segments fail the checksum and are retransmitted."""
        bed = build_testbed("spin", "ethernet")
        bed.medium.set_fault_model(corrupt_rate=0.05, seed=7)
        received = tcp_transfer(bed, total=40_000)
        assert received >= 40_000
        assert bed.medium.frames_corrupted > 0
        errors = (bed.stacks[1].tcp.checksum_errors +
                  bed.stacks[1].ip.header_errors +
                  bed.stacks[0].tcp.checksum_errors +
                  bed.stacks[0].ip.header_errors)
        assert errors > 0

    def test_udp_loses_datagrams_on_lossy_wire(self):
        bed = build_testbed("spin", "ethernet")
        bed.medium.set_fault_model(loss_rate=0.3, seed=3)
        engine = bed.engine
        seen = []

        @ephemeral
        def count(m, off, src_ip, src_port, dst_ip, dst_port):
            seen.append(1)
        bed.stacks[1].udp_manager.bind(Credential("s"), 7000, count)
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)
        host = bed.hosts[0]

        def blast():
            for _ in range(40):
                yield from host.kernel_path(
                    lambda: sender.send(bytes(64), bed.ip(1), 7000))
        engine.run_process(blast())
        engine.run()
        # UDP offers no recovery: some datagrams are simply gone.
        assert 0 < len(seen) < 40

    def test_fault_rates_validated(self):
        bed = build_testbed("spin", "ethernet")
        with pytest.raises(ValueError):
            bed.medium.set_fault_model(loss_rate=1.5)

    def test_fault_injection_is_deterministic(self):
        losses = []
        for _ in range(2):
            bed = build_testbed("spin", "ethernet")
            bed.medium.set_fault_model(loss_rate=0.1, seed=99)
            tcp_transfer(bed, total=20_000)
            losses.append(bed.medium.frames_lost)
        assert losses[0] == losses[1]

    def test_video_stream_degrades_gracefully_under_loss(self):
        """UDP video has no recovery: lost datagrams mean lost frames,
        but the stream keeps playing (the application-specific tradeoff
        of paper sec. 1.1)."""
        from repro.apps.video import VIDEO_PORT_BASE, SpinVideoClient, SpinVideoServer
        bed = build_testbed("spin", "t3")
        bed.medium.set_fault_model(loss_rate=0.15, seed=11)
        client = SpinVideoClient(bed.stacks[1])
        server = SpinVideoServer(bed.stacks[0])
        server.add_stream(bed.ip(1), VIDEO_PORT_BASE, frames=20)
        bed.engine.run(until=900_000.0)
        assert server.stats.frames_sent == 20
        assert bed.medium.frames_lost > 0
        # Some frames were lost...
        assert client.frames_displayed < 20
        # ...but the stream as a whole survived.
        assert client.frames_displayed > 5

    def test_point_to_point_faults(self):
        bed = build_testbed("spin", "t3")
        bed.medium.set_fault_model(loss_rate=0.05, seed=5)
        received = tcp_transfer(bed, total=40_000)
        assert received >= 40_000
        assert bed.medium.frames_lost > 0


class TestDecoder:
    def test_decode_udp_frame(self):
        bed = build_testbed("spin", "ethernet")
        tracer = PacketTracer(bed.engine)
        tracer.attach(bed.nics[0])
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)
        bed.engine.run_process(bed.hosts[0].kernel_path(
            lambda: sender.send(bytes(32), bed.ip(1), 7000)))
        bed.engine.run()
        assert tracer.matching("udp 7001>7000")

    def test_decode_tcp_handshake(self):
        bed = build_testbed("spin", "ethernet")
        tracer = PacketTracer(bed.engine)
        tracer.attach(bed.nics[0])
        tracer.attach(bed.nics[1])
        bed.stacks[1].tcp_manager.listen(Credential("s"), 9000,
                                         lambda tcb: None)
        bed.engine.run_process(bed.hosts[0].kernel_path(
            lambda: bed.stacks[0].tcp_manager.connect(
                Credential("c"), bed.ip(1), 9000)))
        bed.engine.run()
        assert tracer.matching("[SYN]")
        assert tracer.matching("[SYN|ACK]")

    def test_decode_arp(self):
        bed = build_testbed("spin", "ethernet", warm_arp=False)
        tracer = PacketTracer(bed.engine)
        tracer.attach(bed.nics[0])
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)
        bed.engine.run_process(bed.hosts[0].kernel_path(
            lambda: sender.send(bytes(8), bed.ip(1), 7000)))
        bed.engine.run()
        assert tracer.matching("arp")

    def test_decode_raw_link_frames(self):
        bed = build_testbed("spin", "t3")
        tracer = PacketTracer(bed.engine)
        tracer.attach(bed.nics[0], link_kind="raw")
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)
        bed.engine.run_process(bed.hosts[0].kernel_path(
            lambda: sender.send(bytes(8), bed.ip(1), 7000)))
        bed.engine.run()
        assert tracer.matching("udp 7001>7000")

    def test_decode_fragments(self):
        bed = build_testbed("spin", "ethernet")
        tracer = PacketTracer(bed.engine)
        tracer.attach(bed.nics[0])
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)
        bed.engine.run_process(bed.hosts[0].kernel_path(
            lambda: sender.send(bytes(4000), bed.ip(1), 7000)))
        bed.engine.run()
        assert tracer.matching("frag@")

    def test_nocsum_flagged(self):
        bed = build_testbed("spin", "ethernet")
        tracer = PacketTracer(bed.engine)
        tracer.attach(bed.nics[0])
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop,
                                                checksum=False)
        bed.engine.run_process(bed.hosts[0].kernel_path(
            lambda: sender.send(bytes(16), bed.ip(1), 7000)))
        bed.engine.run()
        assert tracer.matching("nocsum")

    def test_runt_frame(self):
        assert "runt" in decode_frame(b"tiny")

    def test_render_and_limits(self):
        bed = build_testbed("spin", "ethernet")
        tracer = PacketTracer(bed.engine, limit=2)
        tracer.attach(bed.nics[0])
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)

        def blast():
            for _ in range(5):
                yield from bed.hosts[0].kernel_path(
                    lambda: sender.send(bytes(8), bed.ip(1), 7000))
        bed.engine.run_process(blast())
        bed.engine.run()
        assert len(tracer.records) == 2
        assert tracer.dropped_records > 0
        assert "records dropped" in tracer.render()

    def test_decode_icmp_echo(self):
        bed = build_testbed("spin", "ethernet")
        tracer = PacketTracer(bed.engine)
        tracer.attach(bed.nics[0])
        bed.engine.run_process(bed.hosts[0].kernel_path(
            lambda: bed.stacks[0].icmp.send_echo_request(
                bed.ip(1), ident=7, seq=3)))
        bed.engine.run()
        assert tracer.matching("icmp echo-request id=7 seq=3")
        assert tracer.matching("icmp echo-reply id=7 seq=3")

    def test_ring_wraparound_keeps_newest_in_order(self):
        bed = build_testbed("spin", "ethernet")
        tracer = PacketTracer(bed.engine, limit=3)
        tracer.attach(bed.nics[0])
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)

        def blast():
            for size in (8, 16, 24, 32, 40, 48, 56):
                yield from bed.hosts[0].kernel_path(
                    lambda s=size: sender.send(bytes(s), bed.ip(1), 7000))
        bed.engine.run_process(blast())
        bed.engine.run()
        records = tracer.records
        # Exactly the newest `limit` records survive, oldest-first.
        assert len(records) == 3
        assert tracer.dropped_records == 4
        timestamps = [record.time for record in records]
        assert timestamps == sorted(timestamps)
        sizes = [len(record.data) for record in records]
        assert sizes == sorted(sizes)  # payloads grew monotonically
        assert "4 records dropped" in tracer.render()

    def test_ring_limit_validated(self):
        bed = build_testbed("spin", "ethernet")
        with pytest.raises(ValueError):
            PacketTracer(bed.engine, limit=0)

    def test_clear_resets_ring_and_drop_count(self):
        bed = build_testbed("spin", "ethernet")
        tracer = PacketTracer(bed.engine, limit=2)
        tracer.attach(bed.nics[0])
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)

        def blast():
            for _ in range(4):
                yield from bed.hosts[0].kernel_path(
                    lambda: sender.send(bytes(8), bed.ip(1), 7000))
        bed.engine.run_process(blast())
        bed.engine.run()
        assert tracer.dropped_records > 0
        tracer.clear()
        assert tracer.records == []
        assert tracer.dropped_records == 0

    def test_timeline_queries(self):
        bed = build_testbed("spin", "ethernet")
        tracer = PacketTracer(bed.engine)
        tracer.attach(bed.nics[0])
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)
        bed.engine.run_process(bed.hosts[0].kernel_path(
            lambda: sender.send(bytes(8), bed.ip(1), 7000)))
        bed.engine.run()
        assert tracer.between(0.0, bed.engine.now) == tracer.records
        tracer.clear()
        assert tracer.records == []
