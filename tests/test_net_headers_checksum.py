"""Tests for header layouts, address helpers, and the Internet checksum."""

import pytest

from repro.lang import VIEW
from repro.net import (
    ETHERNET_HEADER,
    IP_HEADER,
    TCP_HEADER,
    UDP_HEADER,
    internet_checksum,
    ip_aton,
    ip_ntoa,
    mac_aton,
    mac_ntoa,
    verify_checksum,
)
from repro.net.headers import ARP_HEADER, ICMP_HEADER, pseudo_header


class TestHeaderSizes:
    """Wire-format sizes must match the real protocols exactly."""

    @pytest.mark.parametrize("layout,size", [
        (ETHERNET_HEADER, 14),
        (ARP_HEADER, 28),
        (IP_HEADER, 20),
        (ICMP_HEADER, 8),
        (UDP_HEADER, 8),
        (TCP_HEADER, 20),
    ])
    def test_size(self, layout, size):
        assert layout.size == size

    def test_ip_field_offsets(self):
        assert IP_HEADER.offsets["ttl"] == 8
        assert IP_HEADER.offsets["protocol"] == 9
        assert IP_HEADER.offsets["src"] == 12
        assert IP_HEADER.offsets["dst"] == 16

    def test_tcp_field_offsets(self):
        assert TCP_HEADER.offsets["seq"] == 4
        assert TCP_HEADER.offsets["ack"] == 8
        assert TCP_HEADER.offsets["window"] == 14


class TestAddresses:
    def test_ip_roundtrip(self):
        assert ip_ntoa(ip_aton("10.1.2.3")) == "10.1.2.3"

    def test_ip_aton_value(self):
        assert ip_aton("1.2.3.4") == 0x01020304

    def test_ip_aton_rejects_malformed(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                ip_aton(bad)

    def test_ip_ntoa_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ip_ntoa(1 << 33)

    def test_mac_roundtrip(self):
        assert mac_ntoa(mac_aton("08:00:2b:aa:bb:cc")) == "08:00:2b:aa:bb:cc"

    def test_mac_aton_rejects_malformed(self):
        with pytest.raises(ValueError):
            mac_aton("08:00:2b")
        with pytest.raises(ValueError):
            mac_ntoa(b"\x01\x02")


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example data.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_zero_data(self):
        assert internet_checksum(b"\x00" * 10) == 0xFFFF

    def test_odd_length(self):
        assert internet_checksum(b"\x01") == (~0x0100) & 0xFFFF

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_verify_after_stamp(self):
        data = bytearray(20)
        data[0:4] = b"\xde\xad\xbe\xef"
        value = internet_checksum(data)
        data[10:12] = value.to_bytes(2, "big")
        assert verify_checksum(data)

    def test_corruption_detected(self):
        data = bytearray(20)
        data[0:4] = b"\xde\xad\xbe\xef"
        value = internet_checksum(data)
        data[10:12] = value.to_bytes(2, "big")
        data[3] ^= 0x40
        assert not verify_checksum(data)

    def test_carry_folding(self):
        # Many 0xFFFF words force carries around.
        assert internet_checksum(b"\xff\xff" * 100) == 0

    def test_initial_accumulator(self):
        pseudo = pseudo_header(ip_aton("1.2.3.4"), ip_aton("5.6.7.8"), 17, 8)
        whole = internet_checksum(pseudo + bytes(8))
        assert whole == internet_checksum(bytes(8) + pseudo)  # commutative


class TestHeadersAreViewable:
    def test_build_ip_header_via_view(self):
        buf = bytearray(IP_HEADER.size)
        view = VIEW(buf, IP_HEADER)
        view.vhl = 0x45
        view.ttl = 64
        view.protocol = 17
        view.src = ip_aton("10.0.0.1")
        view.dst = ip_aton("10.0.0.2")
        again = VIEW(bytes(buf), IP_HEADER)
        assert again.ttl == 64
        assert ip_ntoa(again.src) == "10.0.0.1"

    def test_tcp_flags_packing(self):
        buf = bytearray(TCP_HEADER.size)
        view = VIEW(buf, TCP_HEADER)
        view.off_flags = (5 << 12) | 0x12  # SYN|ACK, 20-byte header
        assert (view.off_flags >> 12) * 4 == 20
        assert view.off_flags & 0x3F == 0x12
