"""The partitioned conservative simulation core.

Four layers, bottom up:

* ``SchedulerCore`` window semantics: ``run_window(bound)`` is strict
  (an event exactly at the bound belongs to the *next* window),
  ``next_event_time`` is exact, ``call_at`` schedules absolute floats.
* Boundary plumbing: zero/negative-lookahead channels are rejected at
  both layers (they would admit no safe window), duplicate registration
  and non-causal sends raise.
* The coordinator: a timer on the exact safe-window edge, routed-frame
  tie-breaking, and serial/parallel executor equality -- including a
  UDP ping-pong whose RTTs must be bit-identical across the serial
  executor, the parallel executor, AND the classic single-engine bed
  (the boundary channel mirrors ``PointToPointLink`` timing exactly).
* The workload surface: partitioned ``many_flows`` against its serial
  oracle, ``run_workload(sim_jobs=...)`` plumbing, ``merge_snapshots``,
  and a mid-run flap on a boundary channel.
"""

import math

import pytest

from repro.bench.testbed import build_boundary_pair_partition, \
    build_testbed, partition_hosts
from repro.hw.link import BoundaryChannel
from repro.obs.registry import MetricError, merge_snapshots
from repro.sim import Engine, Partition, PartitionedSimulation, \
    PartitionEngine, SimulationError

INF = float("inf")


# ---------------------------------------------------------------------------
# SchedulerCore window semantics
# ---------------------------------------------------------------------------

class TestRunWindow:
    def test_event_exactly_at_bound_waits_for_next_window(self):
        engine = Engine()
        fired = []
        engine.call_at(5.0, lambda _ev: fired.append(engine.now))
        assert engine.run_window(5.0) == 0
        assert fired == []
        assert engine.next_event_time() == 5.0
        assert engine.run_window(5.0 + 1e-9) == 1
        assert fired == [5.0]

    def test_window_processes_everything_strictly_below_bound(self):
        engine = Engine()
        fired = []
        for when in (1.0, 2.0, 3.0, 4.0):
            engine.call_at(when, lambda _ev, w=when: fired.append(w))
        assert engine.run_window(3.0) == 2
        assert fired == [1.0, 2.0]
        assert engine.now == 2.0

    def test_next_event_time_exact_and_inf_when_empty(self):
        engine = Engine()
        assert engine.next_event_time() == INF
        engine.call_at(7.25, lambda _ev: None)
        assert engine.next_event_time() == 7.25
        engine.run_window(8.0)
        assert engine.next_event_time() == INF

    def test_call_at_in_the_past_raises(self):
        engine = Engine()
        engine.call_at(3.0, lambda _ev: None)
        engine.run(until=4.0)
        with pytest.raises(SimulationError):
            engine.call_at(2.0, lambda _ev: None)

    def test_call_at_same_time_fifo(self):
        engine = Engine()
        order = []
        engine.call_at(1.0, lambda _ev: order.append("first"))
        engine.call_at(1.0, lambda _ev: order.append("second"))
        engine.run_window(2.0)
        assert order == ["first", "second"]


# ---------------------------------------------------------------------------
# boundary-channel edge cases
# ---------------------------------------------------------------------------

class _FakeChannel:
    def __init__(self, channel_id, lookahead_us):
        self.channel_id = channel_id
        self.lookahead_us = lookahead_us

    def deliver(self, payload):
        pass


class TestBoundaryRejection:
    def test_zero_propagation_boundary_medium_rejected(self):
        engine = PartitionEngine(0)
        with pytest.raises(ValueError, match="lookahead"):
            BoundaryChannel(engine, "b", bandwidth_bps=45e6,
                            propagation_us=0.0)

    def test_negative_propagation_rejected(self):
        engine = PartitionEngine(0)
        with pytest.raises(ValueError, match="lookahead"):
            BoundaryChannel(engine, "b", bandwidth_bps=45e6,
                            propagation_us=-1.0)

    def test_register_channel_requires_positive_lookahead(self):
        engine = PartitionEngine(0)
        with pytest.raises(SimulationError, match="no lookahead"):
            engine.register_channel(_FakeChannel("b", 0.0))

    def test_duplicate_channel_id_rejected(self):
        engine = PartitionEngine(0)
        engine.register_channel(_FakeChannel("b", 1.0))
        with pytest.raises(SimulationError, match="twice"):
            engine.register_channel(_FakeChannel("b", 2.0))

    def test_non_causal_send_rejected(self):
        engine = PartitionEngine(0)
        engine.register_channel(_FakeChannel("b", 1.0))
        engine.call_at(5.0, lambda _ev: None)
        engine.run(until=6.0)
        with pytest.raises(SimulationError, match="not after now"):
            engine.send_boundary("b", 5.0, 1, "late")

    def test_boundary_channel_single_nic(self):
        engine = PartitionEngine(0)
        channel = BoundaryChannel(engine, "b", bandwidth_bps=45e6)
        assert channel.lookahead_us == 1.0
        assert engine.min_lookahead_us() == 1.0

    def test_partition_requires_partition_engine(self):
        with pytest.raises(TypeError):
            Partition(Engine(), done=lambda: True, result=dict)


class TestPartitionHosts:
    def test_contiguous_blocks_cover_all_hosts(self):
        assignment = partition_hosts(10, 3)
        assert assignment == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert partition_hosts(4, 4) == [[0], [1], [2], [3]]
        assert partition_hosts(2, 1) == [[0, 1]]

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            partition_hosts(4, 0)


# ---------------------------------------------------------------------------
# the coordinator: safe-window edges and executor equality
# ---------------------------------------------------------------------------

def _edge_partition(index, n_partitions, spec):
    """Hand-built two-partition topology probing the safe-window edge.

    Partition 0 sends one boundary frame at t=4 arriving at t=5 over a
    lookahead-1 channel.  Partition 1 holds timers at exactly t=5 (the
    first round's safe-window bound) and t=6 (the second's).  The round
    protocol must leave each edge timer for the round *after* its bound,
    fire the t=5 timer before the t=5 injection (FIFO: the timer claimed
    its sequence number first), and produce the identical log under both
    executors.
    """
    engine = PartitionEngine(index)
    log = []

    class _Chan:
        channel_id = "edge"
        lookahead_us = 1.0

        def deliver(self, payload):
            log.append((engine.now, "frame", payload))

    engine.register_channel(_Chan())
    if index == 0:
        engine.call_at(4.0, lambda _ev: engine.send_boundary(
            "edge", 5.0, 1, "hello"))
    else:
        engine.call_at(5.0, lambda _ev: log.append(
            (engine.now, "timer-on-edge", None)))
        engine.call_at(6.0, lambda _ev: log.append(
            (engine.now, "timer-after-edge", None)))
    return Partition(
        engine,
        done=lambda: engine.next_event_time() == INF,
        result=lambda: {"log": log, "now": engine.now,
                        "events": engine.events_processed})


EDGE_EXPECTED = [(5.0, "timer-on-edge", None), (5.0, "frame", "hello"),
                 (6.0, "timer-after-edge", None)]


class TestSafeWindowEdge:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_timer_exactly_on_safe_window_edge(self, parallel):
        simulation = PartitionedSimulation(_edge_partition, 2,
                                           parallel=parallel)
        results = simulation.run()
        assert results[1]["log"] == EDGE_EXPECTED
        assert results[0]["log"] == []
        assert simulation.frames_routed == 1

    def test_serial_and_parallel_identical(self):
        serial = PartitionedSimulation(_edge_partition, 2, parallel=False)
        parallel = PartitionedSimulation(_edge_partition, 2, parallel=True)
        assert serial.run() == parallel.run()
        assert serial.rounds == parallel.rounds


# ---------------------------------------------------------------------------
# UDP ping-pong: boundary channel vs the classic single-engine bed
# ---------------------------------------------------------------------------

PINGS = 10
PACE_US = 1_000.0
ECHO_PORT = 7777
CLIENT_PORT = 7778


def _attach_echo_server(stack):
    from repro.core.manager import Credential
    from repro.lang.ephemeral import ephemeral
    server_ep = None

    @ephemeral
    def echo_handler(m, off, src_ip, src_port, dst_ip, dst_port):
        server_ep.send(bytes(m.to_bytes()[off:]), src_ip, src_port)
    server_ep = stack.udp_manager.bind(Credential("pong-srv"), ECHO_PORT,
                                       echo_handler)


def _attach_ping_client(engine, host, stack, server_ip):
    from repro.core.manager import Credential
    from repro.lang.ephemeral import ephemeral
    arrivals, sends = [], []

    @ephemeral
    def client_handler(m, off, src_ip, src_port, dst_ip, dst_port):
        arrivals.append(engine.now)
    client_ep = stack.udp_manager.bind(Credential("pong-cli"), CLIENT_PORT,
                                       client_handler)

    def drive():
        for seq in range(PINGS):
            payload = b"ping-%02d" % seq
            sends.append(engine.now)
            yield from host.kernel_path(
                lambda p=payload: client_ep.send(p, server_ip, ECHO_PORT))
            yield engine.pooled_timeout(PACE_US)
    process = engine.process(drive(), name="pingpong")
    return arrivals, sends, process


def _pingpong_partition(index, n_partitions, spec):
    from repro.net.headers import ip_aton

    engine = PartitionEngine(index)
    bed = build_boundary_pair_partition("spin", index, engine)
    stack, host = bed.stacks[0], bed.hosts[0]
    if index == 1:
        _attach_echo_server(stack)
        return Partition(engine, done=lambda: True,
                         result=lambda: {"rtts": [], "now": engine.now,
                                         "events": engine.events_processed})
    arrivals, sends, process = _attach_ping_client(
        engine, host, stack, ip_aton("10.1.0.2"))
    return Partition(
        engine,
        done=lambda: process.triggered and len(arrivals) == PINGS,
        result=lambda: {
            "rtts": [a - s for a, s in zip(arrivals, sends)],
            "now": engine.now,
            "events": engine.events_processed,
        })


def _classic_pingpong_rtts():
    bed = build_testbed("spin", "t3")
    _attach_echo_server(bed.stacks[1])
    arrivals, sends, _process = _attach_ping_client(
        bed.engine, bed.hosts[0], bed.stacks[0], bed.ip(1))
    bed.engine.run()
    return [a - s for a, s in zip(arrivals, sends)]


class TestBoundaryPingPong:
    @pytest.fixture(scope="class")
    def legs(self):
        serial = PartitionedSimulation(_pingpong_partition, 2,
                                       parallel=False).run()
        parallel = PartitionedSimulation(_pingpong_partition, 2,
                                         parallel=True).run()
        return serial, parallel, _classic_pingpong_rtts()

    def test_all_pings_answered(self, legs):
        serial, _parallel, _classic = legs
        assert len(serial[0]["rtts"]) == PINGS
        assert all(rtt > 0.0 for rtt in serial[0]["rtts"])

    def test_parallel_bit_identical_to_serial(self, legs):
        serial, parallel, _classic = legs
        assert parallel == serial

    def test_boundary_timing_bit_identical_to_classic_link(self, legs):
        """The lookahead IS the propagation delay: sharding the classic
        T3 pair across engines must not move a single RTT float."""
        serial, _parallel, classic = legs
        assert serial[0]["rtts"] == classic


# ---------------------------------------------------------------------------
# mid-run flap on a boundary channel
# ---------------------------------------------------------------------------

class TestBoundaryFlap:
    def test_flap_drops_frames_and_executors_agree(self):
        from repro.chaos.partition import build_partition_corpus, \
            run_partition_campaign
        spec = next(s for s in build_partition_corpus(count=6)
                    if "flap" in s.name)
        verdict = run_partition_campaign(spec)
        assert verdict["passed"], verdict["violations"]
        dropped = sum(r["boundary"]["frames_flap_dropped"]
                      for r in verdict["results"])
        assert dropped > 0, "the flap window never hit live traffic"
        # TCP recovered the full stream across the flap.
        assert verdict["results"][1]["tcp"]["received_len"] == spec.tcp_bytes


# ---------------------------------------------------------------------------
# partitioned many_flows and the workload surface
# ---------------------------------------------------------------------------

SMALL_SCALE = 120


class TestPartitionedManyFlows:
    def test_parallel_matches_serial_oracle(self):
        from repro.bench.parallel import run_partitioned_many_flows
        serial = run_partitioned_many_flows(SMALL_SCALE, 2, parallel=False)
        current = run_partitioned_many_flows(SMALL_SCALE, 2, parallel=True)
        assert current["fingerprint"] == serial["fingerprint"]
        assert current["events"] == serial["events"]
        assert current["metrics"] == serial["metrics"]
        assert serial["executor"] == "serial"
        assert current["executor"] == "parallel"

    def test_env_kill_switch_forces_serial(self, monkeypatch):
        from repro.bench.parallel import run_partitioned_many_flows
        monkeypatch.setenv("REPRO_SIM_PARALLEL", "0")
        record = run_partitioned_many_flows(SMALL_SCALE, 2)
        assert record["executor"] == "serial"
        assert record["fingerprint"]["partitions"] == 2

    def test_fingerprint_sums_cover_all_flows(self):
        from repro.bench.parallel import run_partitioned_many_flows
        record = run_partitioned_many_flows(SMALL_SCALE, 3, parallel=False)
        fp = record["fingerprint"]
        assert fp["flows"] == SMALL_SCALE
        assert fp["tcp_done"] + fp["udp_done"] == SMALL_SCALE
        assert math.isfinite(fp["final_now_us"])

    def test_scale_must_cover_partitions(self):
        from repro.bench.parallel import run_partitioned_many_flows
        with pytest.raises(ValueError):
            run_partitioned_many_flows(1, 2)
        with pytest.raises(ValueError):
            run_partitioned_many_flows(10, 0)

    def test_run_workload_rejects_sim_jobs_on_other_workloads(self):
        from repro.bench.wallclock import run_workload
        with pytest.raises(ValueError, match="many_flows"):
            run_workload("tcp_bulk", quick=True, sim_jobs=2)

    def test_run_workload_sim_jobs_against_oracle(self, monkeypatch):
        from repro.bench import wallclock
        fn, _quick, full = wallclock.WORKLOADS["many_flows"]
        monkeypatch.setitem(wallclock.WORKLOADS, "many_flows",
                            (fn, SMALL_SCALE, full))
        current = wallclock.run_workload("many_flows", quick=True, sim_jobs=2)
        monkeypatch.setenv("REPRO_SIM_PARALLEL", "0")
        oracle = wallclock.run_workload("many_flows", quick=True, sim_jobs=2)
        assert current["fingerprint"] == oracle["fingerprint"]
        assert current["metrics"] == oracle["metrics"]
        assert current["events"] == oracle["events"]


class TestPartitionedMegaFlows:
    def test_parallel_matches_serial_oracle(self):
        from repro.bench.parallel import run_partitioned_workload
        serial = run_partitioned_workload("mega_flows", SMALL_SCALE, 2,
                                          parallel=False)
        current = run_partitioned_workload("mega_flows", SMALL_SCALE, 2,
                                           parallel=True)
        assert current["fingerprint"] == serial["fingerprint"]
        assert current["events"] == serial["events"]
        assert current["metrics"] == serial["metrics"]
        assert serial["executor"] == "serial"
        assert current["executor"] == "parallel"

    def test_deferred_replies_hold_every_flow_live(self):
        from repro.bench.wallclock import _mega_flows
        record = _mega_flows(SMALL_SCALE)
        fp = record["fingerprint"]
        assert fp["tcp_done"] + fp["udp_done"] == SMALL_SCALE
        # Every 8th flow is TCP, and the server defers every push until
        # all flows have arrived -- so the connection peak is exactly
        # the full TCP population, not a trickle of early retirements.
        assert fp["peak_conns"] == SMALL_SCALE // 8
        assert fp["bytes_in"] > 0

    def test_mega_flows_is_on_demand_only(self):
        from repro.bench.wallclock import ON_DEMAND_WORKLOADS, WORKLOADS
        assert "mega_flows" in WORKLOADS
        assert "mega_flows" in ON_DEMAND_WORKLOADS


class TestRoundOverhead:
    def test_executors_agree_and_export_metrics(self):
        from repro.bench.parallel import run_round_overhead
        serial = run_round_overhead(messages=20, parallel=False)
        par = run_round_overhead(messages=20, parallel=True)
        # Every ping forces a round over, every echo a round back, plus
        # the final empty round that discovers termination.
        assert serial["rounds"] == par["rounds"] == 2 * 20 + 1
        assert serial["frames_routed"] == par["frames_routed"] == 2 * 20
        for record in (serial, par):
            assert record["rounds_per_sec"] > 0
            assert record["metrics"]["sim.coord.rounds"]["value"] == \
                record["rounds"]
            assert record["metrics"]["sim.coord.frames_routed"]["value"] == \
                record["frames_routed"]
        assert serial["executor"] == "serial"
        assert par["executor"] == "parallel"
        assert par["ring_fallbacks"] == 0


class TestSpeedupExpectation:
    def test_single_core_records_skip_note(self, monkeypatch):
        from repro.bench import parallel
        monkeypatch.setattr(parallel, "affinity_cores", lambda: 1)
        verdict = parallel.speedup_expectation(
            [{"sim_jobs": 2, "executor": "parallel", "speedup": 0.5}])
        assert verdict["gated"] is False
        assert verdict["passed"] is None
        assert "single core" in verdict["note"]
        assert verdict["affinity_cores"] == 1

    def test_multi_core_gates_the_jobs2_leg(self, monkeypatch):
        from repro.bench import parallel
        monkeypatch.setattr(parallel, "affinity_cores", lambda: 4)
        leg = {"sim_jobs": 2, "executor": "parallel", "speedup": 1.5}
        verdict = parallel.speedup_expectation([leg], min_speedup=1.3)
        assert verdict["gated"] is True and verdict["passed"] is True
        verdict = parallel.speedup_expectation(
            [dict(leg, speedup=1.1)], min_speedup=1.3)
        assert verdict["passed"] is False

    def test_multi_core_without_jobs2_leg_skips(self, monkeypatch):
        from repro.bench import parallel
        monkeypatch.setattr(parallel, "affinity_cores", lambda: 4)
        verdict = parallel.speedup_expectation(
            [{"sim_jobs": 4, "executor": "parallel", "speedup": 2.0}])
        assert verdict["gated"] is False
        assert verdict["passed"] is None


# ---------------------------------------------------------------------------
# merge_snapshots
# ---------------------------------------------------------------------------

class TestMergeSnapshots:
    def test_counters_and_gauges_sum(self):
        merged = merge_snapshots([
            {"a": {"type": "counter", "value": 2},
             "g": {"type": "gauge", "value": 1.5}},
            {"a": {"type": "counter", "value": 3},
             "g": {"type": "gauge", "value": 0.5},
             "b": {"type": "counter", "value": 7}},
        ])
        assert merged["a"]["value"] == 5
        assert merged["g"]["value"] == 2.0
        assert merged["b"]["value"] == 7
        assert list(merged) == sorted(merged)

    def test_histograms_merge_elementwise(self):
        h1 = {"type": "histogram", "value": {
            "bounds": [1.0, 10.0], "counts": [2, 1, 0], "count": 3,
            "sum": 12.5}}
        h2 = {"type": "histogram", "value": {
            "bounds": [1.0, 10.0], "counts": [0, 4, 1], "count": 5,
            "sum": 40.0}}
        merged = merge_snapshots([{"h": h1}, {"h": h2}])
        assert merged["h"]["value"] == {
            "bounds": [1.0, 10.0], "counts": [2, 5, 1], "count": 8,
            "sum": 52.5}
        # inputs are not mutated
        assert h1["value"]["counts"] == [2, 1, 0]

    def test_histogram_bounds_mismatch_raises(self):
        h1 = {"type": "histogram", "value": {
            "bounds": [1.0], "counts": [0, 0], "count": 0, "sum": 0.0}}
        h2 = {"type": "histogram", "value": {
            "bounds": [2.0], "counts": [0, 0], "count": 0, "sum": 0.0}}
        with pytest.raises(MetricError):
            merge_snapshots([{"h": h1}, {"h": h2}])

    def test_type_mismatch_raises(self):
        with pytest.raises(MetricError):
            merge_snapshots([
                {"m": {"type": "counter", "value": 1}},
                {"m": {"type": "gauge", "value": 1.0}},
            ])

    def test_empty_and_single(self):
        assert merge_snapshots([]) == {}
        one = {"a": {"type": "counter", "value": 4}}
        assert merge_snapshots([one]) == one

    def test_empty_registry_snapshot_is_identity(self):
        # A partition with no instruments registered contributes nothing.
        assert merge_snapshots([{}]) == {}
        one = {"a": {"type": "counter", "value": 4}}
        assert merge_snapshots([{}, one, {}]) == one

    def test_histogram_bucket_count_mismatch_raises(self):
        # Same bounds but different counts lengths: a zip-based merge
        # would silently drop the tail buckets instead of failing.
        h1 = {"type": "histogram", "value": {
            "bounds": [1.0, 10.0], "counts": [1, 2, 3], "count": 6,
            "sum": 10.0}}
        h2 = {"type": "histogram", "value": {
            "bounds": [1.0, 10.0], "counts": [1, 2], "count": 3,
            "sum": 5.0}}
        with pytest.raises(MetricError, match="buckets"):
            merge_snapshots([{"h": h1}, {"h": h2}])
        with pytest.raises(MetricError, match="buckets"):
            merge_snapshots([{"h": h2}, {"h": h1}])

    def test_disjoint_counter_sets_union(self):
        merged = merge_snapshots([
            {"only.left": {"type": "counter", "value": 1}},
            {"only.right": {"type": "counter", "value": 2}},
        ])
        assert merged == {
            "only.left": {"type": "counter", "value": 1},
            "only.right": {"type": "counter", "value": 2},
        }
