"""Tests for IP (fragmentation, checksums, demux) and ICMP."""

import pytest

from repro.lang import VIEW
from repro.net.headers import IPPROTO_UDP, IP_HEADER, ip_aton

from nethelpers import make_pair


def send_udp(stack, payload, dst, sport=5000, dport=6000, checksum=True):
    def work():
        m = stack.host.mbufs.from_bytes(payload, leading_space=64)
        stack.udp.output(m, sport, dst, dport, checksum=checksum)
    stack.run_kernel(work)


class TestIpBasics:
    def test_datagram_delivered(self):
        engine, wire, a, b = make_pair()
        got = []
        b.udp.upcall = lambda m, off, *rest: got.append(bytes(m.to_bytes()[off:]))
        send_udp(a, b"hello ip", b.my_ip)
        engine.run()
        assert got == [b"hello ip"]

    def test_wrong_destination_dropped(self):
        engine, wire, a, b = make_pair()
        got = []
        b.udp.upcall = lambda *args: got.append(args)

        def work():
            m = a.host.mbufs.from_bytes(b"stray", leading_space=64)
            a.ip.output(m, ip_aton("10.0.0.99"), IPPROTO_UDP)
        a.run_kernel(work)
        # Deliver it to b anyway (mis-switched frame).
        packets = []
        wire.drop_filter = lambda data, hop: packets.append(data) or True
        engine.run()

        def misdeliver():
            chain = b.host.mbufs.from_bytes(packets[0])
            b.ip.input(chain, 0)
        b.run_kernel(misdeliver)
        engine.run()
        assert got == []
        assert b.ip.not_for_us == 1

    def test_header_checksum_verified(self):
        engine, wire, a, b = make_pair()
        captured = []
        wire.drop_filter = lambda data, hop: captured.append(bytearray(data)) or True
        send_udp(a, b"x", b.my_ip)
        engine.run()
        packet = captured[0]
        packet[8] ^= 0xFF  # corrupt the TTL under the checksum

        def misdeliver():
            b.ip.input(b.host.mbufs.from_bytes(bytes(packet)), 0)
        b.run_kernel(misdeliver)
        engine.run()
        assert b.ip.header_errors == 1
        assert b.ip.packets_in == 0

    def test_ttl_stamped(self):
        engine, wire, a, b = make_pair()
        captured = []
        wire.drop_filter = lambda data, hop: captured.append(data) or False
        send_udp(a, b"x", b.my_ip)
        engine.run()
        view = VIEW(captured[0], IP_HEADER)
        assert view.ttl == 64
        assert view.protocol == IPPROTO_UDP

    def test_idents_increment(self):
        engine, wire, a, b = make_pair()
        captured = []
        wire.drop_filter = lambda data, hop: captured.append(data) or False
        send_udp(a, b"x", b.my_ip)
        send_udp(a, b"y", b.my_ip)
        engine.run()
        idents = [VIEW(p, IP_HEADER).ident for p in captured]
        assert idents[1] == idents[0] + 1

    def test_broadcast_accepted(self):
        engine, wire, a, b = make_pair()
        assert b.ip.accepts(0xFFFFFFFF)

    def test_alias_accepted(self):
        engine, wire, a, b = make_pair()
        vip = ip_aton("10.0.0.200")
        assert not b.ip.accepts(vip)
        b.ip.add_alias(vip)
        assert b.ip.accepts(vip)
        b.ip.remove_alias(vip)
        assert not b.ip.accepts(vip)

    def test_multicast_group_membership(self):
        engine, wire, a, b = make_pair()
        group = ip_aton("224.1.2.3")
        b.ip.join_group(group)
        assert b.ip.accepts(group)
        b.ip.leave_group(group)
        assert not b.ip.accepts(group)

    def test_join_non_class_d_rejected(self):
        engine, wire, a, b = make_pair()
        with pytest.raises(ValueError):
            b.ip.join_group(ip_aton("10.0.0.5"))


class TestFragmentation:
    def test_large_datagram_fragmented_and_reassembled(self):
        engine, wire, a, b = make_pair(mtu=600)
        payload = bytes(range(256)) * 8  # 2048 bytes > MTU
        got = []
        b.udp.upcall = lambda m, off, *rest: got.append(bytes(m.to_bytes()[off:]))
        send_udp(a, payload, b.my_ip)
        engine.run()
        assert got == [payload]
        assert a.ip.fragments_out >= 4
        assert b.ip.reassembled == 1

    def test_fragment_payloads_are_8_byte_aligned(self):
        engine, wire, a, b = make_pair(mtu=600)
        captured = []
        wire.drop_filter = lambda data, hop: captured.append(data) or False
        send_udp(a, bytes(2000), b.my_ip)
        engine.run()
        offsets = [(VIEW(p, IP_HEADER).frag_off & 0x1FFF) * 8 for p in captured]
        assert offsets == sorted(offsets)
        for p in captured[:-1]:
            assert (len(p) - 20) % 8 == 0

    def test_lost_fragment_stalls_reassembly(self):
        engine, wire, a, b = make_pair(mtu=600)
        counter = {"n": 0}

        def drop_second(data, hop):
            counter["n"] += 1
            return counter["n"] == 2
        wire.drop_filter = drop_second
        got = []
        b.udp.upcall = lambda m, off, *rest: got.append(True)
        send_udp(a, bytes(2000), b.my_ip)
        engine.run()
        assert got == []
        assert b.ip.reassembled == 0

    def test_interleaved_reassembly_by_ident(self):
        engine, wire, a, b = make_pair(mtu=600)
        got = []
        b.udp.upcall = lambda m, off, *rest: got.append(bytes(m.to_bytes()[off:]))
        send_udp(a, b"A" * 1500, b.my_ip)
        send_udp(a, b"B" * 1500, b.my_ip)
        engine.run()
        assert sorted(got) == [b"A" * 1500, b"B" * 1500]
        assert b.ip.reassembled == 2


class TestIcmp:
    def test_echo_request_reply(self):
        engine, wire, a, b = make_pair()
        replies = []
        a.icmp.on_echo_reply = (
            lambda ident, seq, payload, src: replies.append((ident, seq, payload)))
        a.run_kernel(lambda: a.icmp.send_echo_request(b.my_ip, ident=7, seq=1,
                                                      payload=b"ping!"))
        engine.run()
        assert replies == [(7, 1, b"ping!")]
        assert b.icmp.echo_requests_in == 1
        assert a.icmp.echo_replies_in == 1

    def test_corrupt_icmp_dropped(self):
        engine, wire, a, b = make_pair()
        captured = []
        wire.drop_filter = lambda data, hop: captured.append(bytearray(data)) or True
        a.run_kernel(lambda: a.icmp.send_echo_request(b.my_ip, 1, 1, b"x"))
        engine.run()
        packet = captured[0]
        packet[-1] ^= 0x01  # corrupt ICMP payload under its checksum

        def misdeliver():
            b.ip.input(b.host.mbufs.from_bytes(bytes(packet)), 0)
        b.run_kernel(misdeliver)
        engine.run()
        assert b.icmp.echo_requests_in == 0

    def test_unreachable_reporting(self):
        engine, wire, a, b = make_pair()
        seen = []
        a.icmp.on_unreachable = lambda code, quote: seen.append(code)

        def work():
            m = b.host.mbufs.from_bytes(bytes(28))
            b.icmp.send_unreachable(3, m, 0, a.my_ip)
        b.run_kernel(work)
        engine.run()
        assert seen == [3]
        assert b.icmp.unreachables_sent == 1
