"""SLO layer: shared percentiles, request lifecycles, the queueing-delay
decomposition, and the BENCH_latency gate semantics."""

import os
import types
from bisect import bisect_right

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.stats import summarize
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.schema import undocumented_metrics
from repro.obs.slo import (ATTRIBUTED_COMPONENTS, LATENCY_BOUNDS_US,
                           RequestLifecycle, SloTracker, percentile, to_ns)
from repro.sim import Engine


def _advance(engine, us):
    """Move simulated time forward by ``us`` microseconds."""
    def proc():
        yield engine.pooled_timeout(us)
    engine.run_process(proc(), name="advance")


class TestPercentile:
    def test_nearest_rank(self):
        samples = [10, 20, 30, 40]
        assert percentile(samples, 0.25) == 10
        assert percentile(samples, 0.5) == 20
        assert percentile(samples, 0.75) == 30
        assert percentile(samples, 0.99) == 40
        assert percentile(samples, 1.0) == 40
        assert percentile([7], 0.999) == 7

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 0.0)
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_to_ns_is_profiler_quantization(self):
        assert to_ns(1.0) == 1000
        assert to_ns(0.0004) == 0
        assert to_ns(0.0006) == 1
        assert to_ns(575.4321) == 575432

    def test_summary_shares_the_rank_rule(self):
        samples = [5.0, 1.0, 9.0, 3.0, 3.0, 7.0]
        summary = summarize(samples)
        ordered = sorted(samples)
        assert summary.p50 == percentile(ordered, 0.50)
        assert summary.p99 == percentile(ordered, 0.99)
        assert summary.p999 == percentile(ordered, 0.999)

    def test_histogram_resolves_the_same_rank_to_its_bucket(self):
        hist = Histogram("t", LATENCY_BOUNDS_US)
        samples = [60.0, 120.0, 120.0, 900.0, 5000.0]
        for sample in samples:
            hist.observe(sample)
        for q in (0.5, 0.9, 0.99, 1.0):
            raw = percentile(sorted(samples), q)
            index = bisect_right(hist.bounds, raw)
            expected = (hist.bounds[index] if index < len(hist.bounds)
                        else float("inf"))
            assert hist.percentile(q) == expected


class TestRequestLifecycle:
    def test_double_end_raises(self):
        lifecycle = RequestLifecycle(Engine())
        request = lifecycle.begin("k")
        lifecycle.end(request)
        with pytest.raises(ValueError):
            lifecycle.end(request)

    def test_unattributed_without_tracker(self):
        engine = Engine()
        lifecycle = RequestLifecycle(engine)
        request = lifecycle.begin("k")
        _advance(engine, 123.456)
        lifecycle.end(request)
        assert request.total_ns == to_ns(123.456)
        assert request.components == {"unattributed": request.total_ns}
        assert request.component_sum_ns() == request.total_ns
        # And the float latency is the historical arithmetic.
        assert request.latency_us == request.end_us - request.begin_us

    def test_percentiles_ns_record(self):
        engine = Engine()
        lifecycle = RequestLifecycle(engine)
        for latency_us in (100.0, 300.0, 200.0):
            request = lifecycle.begin("k")
            _advance(engine, latency_us)
            lifecycle.end(request)
        record = lifecycle.percentiles_ns("k")
        assert record == {"n": 3, "p50_ns": 200000, "p99_ns": 300000,
                          "p999_ns": 300000, "max_ns": 300000,
                          "sum_ns": 600000}
        assert lifecycle.open_requests == 0

    def test_register_metrics_backfills_and_observes_live(self):
        engine = Engine()
        lifecycle = RequestLifecycle(engine)
        for latency_us in (100.0, 300.0):
            request = lifecycle.begin("k")
            _advance(engine, latency_us)
            lifecycle.end(request)
        registry = MetricsRegistry()
        lifecycle.register_metrics(registry)
        histogram = registry.get("slo.latency.us")
        assert histogram.count == 2  # back-filled from completed samples
        request = lifecycle.begin("k")
        _advance(engine, 50.0)
        lifecycle.end(request)
        assert histogram.count == 3  # live ends observe directly
        snapshot = registry.snapshot()
        assert "slo.latency.p99_ns" in snapshot
        assert "slo.component.cpu_service_ns" in snapshot
        # Every slo.* metric the lifecycle registers is documented.
        assert undocumented_metrics(registry) == []


class TestFigure5BitIdentity:
    def test_lifecycle_samples_match_inline_collection(self):
        """Figure 5 through the lifecycle is bit-identical to the
        historical hand-kept ``samples.append(engine.now - start)``."""
        from repro.bench.latency import measure_plexus_udp_rtt
        trips = 6
        summary = measure_plexus_udp_rtt("ethernet", trips=trips)
        assert summary.samples == self._inline_collection("ethernet", trips)
        assert summary.n == trips

    @staticmethod
    def _inline_collection(device, trips):
        from repro.bench.testbed import build_testbed
        from repro.core.manager import Credential
        from repro.lang.ephemeral import ephemeral
        from repro.sim import Signal

        bed = build_testbed("spin", device, deliver_mode="interrupt")
        engine = bed.engine
        client_stack, server_stack = bed.stacks
        client_host = bed.hosts[0]
        reply_seen = Signal(engine)
        server_ep = None

        @ephemeral
        def server_handler(m, off, src_ip, src_port, dst_ip, dst_port):
            payload = bytes(m.to_bytes()[off:])
            server_ep.send(payload, src_ip, src_port)

        @ephemeral
        def client_handler(m, off, src_ip, src_port, dst_ip, dst_port):
            client_host.defer(reply_seen.fire)

        server_ep = server_stack.udp_manager.bind(
            Credential("pong"), 7002, server_handler, mode="inline")
        client_ep = client_stack.udp_manager.bind(
            Credential("ping"), 7001, client_handler, mode="inline")
        samples = []
        payload = bytes(8)

        def ping_loop():
            for _ in range(trips):
                start = engine.now
                waiter = reply_seen.wait()
                yield from client_host.kernel_path(
                    lambda: client_ep.send(payload, bed.ip(1), 7002))
                yield waiter
                samples.append(engine.now - start)

        engine.run_process(ping_loop(), name="ping")
        return samples


def _with_mode(overrides, fn):
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        return fn()
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


class TestDecomposition:
    def test_udp_probe_reconciles_on_every_flow_cache_rung(self):
        from repro.bench.slo import run_probe
        from repro.bench.wallclock import _MODE_ENV
        results = {mode: _with_mode(overrides,
                                    lambda: run_probe("udp_clean"))
                   for mode, overrides in _MODE_ENV.items()}
        for mode, record in results.items():
            assert record["reconciled"], (mode, record["errors"])
            assert record["percentiles"]["completed"] == 10
        assert (results["current"] == results["prechange"]
                == results["uncached"])
        parts = results["current"]["components_ns"]
        assert all(value >= 0 for value in parts.values())
        # The paper's claim in decomposition form: the in-kernel RTT is
        # mostly protocol CPU, with a real but smaller wire share.
        assert parts["cpu_service"] > parts["propagation"] > 0

    def test_bursty_loss_raises_p999_and_books_stall(self):
        from repro.bench.slo import run_probe
        clean = run_probe("tcp_clean")
        impaired = run_probe("tcp_impaired")
        assert clean["reconciled"], clean["errors"]
        assert impaired["reconciled"], impaired["errors"]
        assert (impaired["percentiles"]["p999_ns"]
                > clean["percentiles"]["p999_ns"])
        assert (impaired["components_ns"]["stall"]
                > clean["components_ns"]["stall"])


_IMPAIRMENTS = st.fixed_dictionaries({
    "loss_good": st.floats(0.0, 0.03),
    "loss_bad": st.floats(0.1, 0.5),
    "p_good_bad": st.floats(0.01, 0.1),
    "p_bad_good": st.floats(0.1, 0.5),
    "jitter_us": st.floats(0.0, 200.0),
})


class TestReconciliationProperty:
    @settings(max_examples=5, deadline=None)
    @given(wire_seed=st.integers(0, 2 ** 16),
           schedule_seed=st.integers(0, 2 ** 16),
           config_kwargs=_IMPAIRMENTS)
    def test_components_nonnegative_and_telescoping(self, wire_seed,
                                                    schedule_seed,
                                                    config_kwargs):
        lifecycle = self._impaired_run(config_kwargs, wire_seed,
                                       schedule_seed)
        for request in lifecycle.completed:
            assert set(request.components) == set(ATTRIBUTED_COMPONENTS)
            assert all(value >= 0
                       for value in request.components.values()), request
            assert request.component_sum_ns() == request.total_ns, request

    @staticmethod
    def _impaired_run(config_kwargs, wire_seed, schedule_seed, trips=4):
        from repro.bench.testbed import build_testbed
        from repro.fabric.traffic import OpenLoopSource
        from repro.hw.link import ImpairmentConfig

        bed = build_testbed("unix", "atm", deliver_mode="interrupt")
        engine = bed.engine
        client_sockets, server_sockets = bed.sockets
        config = ImpairmentConfig(**config_kwargs)
        for medium in bed.media():
            medium.set_impairments(config, seed=wire_seed)
        tracker = SloTracker(engine).attach(bed.hosts, bed.nics)
        lifecycle = RequestLifecycle(engine, tracker)
        source = OpenLoopSource(seed=schedule_seed, arrival="poisson",
                                mean_gap_us=2000.0, size_dist="fixed",
                                fixed_size=64, min_size=32, max_size=1400)
        gaps = [gap for gap, _size in source.schedule(trips)]
        obj = bytes(1024)

        def server():
            listener = server_sockets.tcp_socket()
            yield from listener.listen(9090, backlog=trips)
            while True:
                child = yield from listener.accept()
                yield from child.send(obj)
                yield from child.close()

        def client():
            for seq, gap in enumerate(gaps):
                yield engine.pooled_timeout(gap)
                request = lifecycle.begin("probe", seq)
                sock = client_sockets.tcp_socket()
                yield from sock.connect((bed.ip(1), 9090))
                while True:
                    data = yield from sock.recv()
                    if not data:
                        break
                yield from sock.close()
                lifecycle.end(request)

        engine.process(server(), name="prop-server")
        engine.process(client(), name="prop-client")
        engine.run(until=20_000_000.0)
        tracker.detach()
        return lifecycle


def _fingerprint_side(p50=100, p99=200, p999=300):
    return {"n": 10, "p50_ns": p50, "p99_ns": p99, "p999_ns": p999,
            "max_ns": p999, "sum_ns": 1500, "requested": 10,
            "completed": 10, "still_open": 0}


def _tiny_report():
    parts = {"cpu_service": 900, "nic_ring": 100, "propagation": 400,
             "stall": 100, "unattributed": 0}
    return {
        "quick": True,
        "host": {"machine": "x"},
        "legs": {"udp_echo@g400": {
            "workload": "udp_echo", "mean_gap_us": 400.0,
            "open": _fingerprint_side(), "closed": _fingerprint_side(),
            "tail_gap_p99_ns": 0, "wall_s": 1.0,
        }},
        "decomposition": {"udp_clean": {
            "percentiles": _fingerprint_side(),
            "components_ns": parts, "reconciled": True, "errors": [],
        }},
        "rungs": {"leg": "udp_echo@g400",
                  "fingerprints": {"current": _fingerprint_side(),
                                   "prechange": _fingerprint_side(),
                                   "uncached": _fingerprint_side()},
                  "ok": True},
    }


class TestLatencyGate:
    def test_matching_baseline_is_clean(self):
        from repro.bench.slo import baseline_from_report, compare_to_baseline
        report = _tiny_report()
        baseline = baseline_from_report(report, None)
        rows = compare_to_baseline(report, baseline, slowdown_warn=0.2)
        assert all(row["ok"] for row in rows.values())
        assert not any(row["errors"] for row in rows.values())

    def test_percentile_drift_is_an_error(self):
        """A seeded 20% p99 drift must fail the gate, not warn."""
        from repro.bench.slo import baseline_from_report, compare_to_baseline
        report = _tiny_report()
        baseline = baseline_from_report(report, None)
        drifted = baseline["quick"]["legs"]["udp_echo@g400"]["open"]
        drifted["p99_ns"] = int(drifted["p99_ns"] * 1.2)
        rows = compare_to_baseline(report, baseline, slowdown_warn=0.2)
        row = rows["udp_echo@g400"]
        assert not row["ok"]
        assert any("fingerprint drifted" in error for error in row["errors"])

    def test_missing_baseline_only_warns(self):
        from repro.bench.slo import compare_to_baseline
        rows = compare_to_baseline(_tiny_report(), {}, slowdown_warn=0.2)
        assert all(row["ok"] for row in rows.values())
        assert rows["udp_echo@g400"]["warnings"]

    def test_wall_clock_slowdown_only_warns(self):
        from repro.bench.slo import baseline_from_report, compare_to_baseline
        report = _tiny_report()
        baseline = baseline_from_report(report, None)
        baseline["quick"]["legs"]["udp_echo@g400"]["wall_s"] = 0.1
        rows = compare_to_baseline(report, baseline, slowdown_warn=0.2)
        row = rows["udp_echo@g400"]
        assert row["ok"]
        assert any("wall time" in warning for warning in row["warnings"])

    def test_unreconciled_probe_is_an_error(self):
        from repro.bench.slo import compare_to_baseline
        report = _tiny_report()
        probe = report["decomposition"]["udp_clean"]
        probe["reconciled"] = False
        probe["errors"] = ["request r0 does not reconcile"]
        rows = compare_to_baseline(report, {}, slowdown_warn=0.2)
        assert not rows["decomposition:udp_clean"]["ok"]

    def test_rung_divergence_is_an_error(self):
        from repro.bench.slo import compare_to_baseline
        report = _tiny_report()
        report["rungs"]["ok"] = False
        rows = compare_to_baseline(report, {}, slowdown_warn=0.2)
        assert not rows["rungs"]["ok"]


class TestHarnessDeterminism:
    def test_leg_schedule_is_a_pure_function_of_the_name(self):
        from repro.bench.slo import _schedule
        assert _schedule("udp_echo@g400", 20) == _schedule("udp_echo@g400", 20)
        assert len(_schedule("udp_echo@g400", 20)) == 20

    def test_leg_rerun_and_jobs2_are_bit_identical(self):
        from repro.bench.runner import _map_tasks
        from repro.bench.slo import _latency_task

        def strip(results):
            cleaned = []
            for record in results:
                record = dict(record)
                record.pop("wall_s", None)
                cleaned.append(record)
            return cleaned

        payloads = [("leg", "udp_echo@g2000", True),
                    ("probe", "udp_clean", True)]
        serial = strip(_map_tasks(_latency_task, payloads, 1))
        rerun = strip(_map_tasks(_latency_task, payloads, 1))
        sharded = strip(_map_tasks(_latency_task, payloads, 2))
        assert serial == rerun == sharded


class TestChaosSloInvariant:
    def test_reconciliation_invariant(self):
        from repro.chaos.invariants import INVARIANTS
        check = INVARIANTS["slo_reconciliation"]
        engine = Engine()
        lifecycle = RequestLifecycle(engine)
        request = lifecycle.begin("k")
        _advance(engine, 42.0)
        lifecycle.end(request)
        ctx = types.SimpleNamespace(
            state=types.SimpleNamespace(lifecycle=lifecycle))
        assert check(ctx) == []
        request.components["unattributed"] += 1  # corrupt the account
        assert check(ctx)

    def test_stateless_workloads_trivially_pass(self):
        from repro.chaos.invariants import INVARIANTS
        check = INVARIANTS["slo_reconciliation"]
        ctx = types.SimpleNamespace(state=types.SimpleNamespace())
        assert check(ctx) == []
