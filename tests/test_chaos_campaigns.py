"""The chaos campaign harness: determinism, invariants, repro bundles.

A campaign is a pure function of its spec, so the same spec must yield
byte-identical verdicts run twice, run serial, or run through the
parallel corpus runner; a deliberately broken invariant must produce a
bundle whose replay reproduces the identical failure.
"""

import json

from repro.chaos import (
    INVARIANTS, CampaignSpec, build_quick_corpus, load_bundle, run_campaign,
    run_corpus, sample_config, write_bundle)
from repro.chaos.campaign import _ROTATION
from repro.hw.link import ImpairmentConfig

import random


def _quick_spec(**overrides):
    base = dict(name="t0", seed=4242, os_name="spin", device="ethernet",
                workload="tcp_bulk", scale=8_192, duration_us=2_000_000.0,
                config=ImpairmentConfig(loss_good=0.02, loss_bad=0.3,
                                        p_good_bad=0.05, p_bad_good=0.3,
                                        duplicate_rate=0.03,
                                        reorder_rate=0.05))
    base.update(overrides)
    return CampaignSpec(**base)


class TestRegistry:
    def test_at_least_six_invariants_registered(self):
        assert len(INVARIANTS) >= 6
        for required in ("byte_exact_delivery", "terminal_socket_states",
                         "frame_conservation", "mbuf_conservation",
                         "timer_wheel_empty", "flow_cache_coherence"):
            assert required in INVARIANTS

    def test_rotation_covers_oses_devices_workloads(self):
        oses = {entry[0] for entry in _ROTATION}
        devices = {entry[1] for entry in _ROTATION}
        workloads = {entry[2] for entry in _ROTATION}
        assert oses == {"spin", "unix"}
        assert devices == {"ethernet", "atm", "t3"}
        assert workloads >= {"tcp_bulk", "udp_echo", "mixed"}


class TestSpec:
    def test_spec_round_trips_through_dict(self):
        spec = _quick_spec(sabotage="tamper_stream", oracle=True)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_sample_config_is_deterministic_and_valid(self):
        one = sample_config(random.Random(77), 2_000_000.0)
        two = sample_config(random.Random(77), 2_000_000.0)
        assert one == two
        one.validate()

    def test_quick_corpus_is_stable(self):
        corpus1 = build_quick_corpus(count=9)
        corpus2 = build_quick_corpus(count=9)
        assert corpus1 == corpus2
        assert len(corpus1) == 9


class TestDeterminism:
    def test_same_spec_same_verdict(self):
        spec = _quick_spec()
        assert run_campaign(spec) == run_campaign(spec)

    def test_serial_matches_parallel_corpus(self):
        specs = build_quick_corpus(count=4)
        serial = run_corpus(specs, jobs=1)
        parallel = run_corpus(specs, jobs=2)
        assert serial == parallel

    def test_verdicts_are_json_clean(self):
        verdict = run_campaign(_quick_spec())
        assert json.loads(json.dumps(verdict)) == verdict


class TestInvariantsHold:
    def test_clean_wire_passes(self):
        verdict = run_campaign(_quick_spec(config=ImpairmentConfig()))
        assert verdict["passed"], verdict["violations"]

    def test_hostile_wire_passes(self):
        verdict = run_campaign(_quick_spec())
        assert verdict["passed"], verdict["violations"]
        # The wire was genuinely hostile.
        assert verdict["impairments"]["lost"] > 0

    def test_oracle_comparison_passes(self):
        verdict = run_campaign(_quick_spec(oracle=True))
        assert verdict["passed"], verdict["violations"]


class TestSabotage:
    def test_tampered_stream_fails_byte_exactness(self):
        verdict = run_campaign(_quick_spec(sabotage="tamper_stream"))
        assert not verdict["passed"]
        assert any("byte_exact_delivery" in v for v in verdict["violations"])
        assert verdict["trace_tail"]  # decoded tracer output for the bundle

    def test_leaked_timer_fails_quiesce(self):
        verdict = run_campaign(_quick_spec(sabotage="leak_timer"))
        assert not verdict["passed"]
        assert any("timer_wheel_empty" in v for v in verdict["violations"])

    def test_bundle_replay_reproduces_failure(self, tmp_path):
        verdict = run_campaign(_quick_spec(sabotage="tamper_stream"))
        path = write_bundle(verdict, str(tmp_path))
        replay_spec = load_bundle(path)
        replay = run_campaign(replay_spec)
        assert replay["violations"] == verdict["violations"]
        assert replay["fingerprint"] == verdict["fingerprint"]

    def test_bundle_is_self_describing(self, tmp_path):
        verdict = run_campaign(_quick_spec(sabotage="tamper_stream"))
        path = write_bundle(verdict, str(tmp_path))
        with open(path) as handle:
            bundle = json.load(handle)
        assert "--replay" in bundle["replay"]
        assert bundle["spec"]["seed"] == 4242
        assert bundle["violations"]


class TestCli:
    def test_quick_run_exits_zero(self, capsys, tmp_path):
        from repro.chaos.__main__ import main
        rc = main(["--count", "2", "--bundle-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2/2 campaigns passed" in out

    def test_sabotaged_run_exits_nonzero_and_writes_bundle(
            self, capsys, tmp_path):
        from repro.chaos.__main__ import main
        rc = main(["--count", "1", "--sabotage", "tamper_stream",
                   "--bundle-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out
        bundles = list(tmp_path.glob("bundle_*.json"))
        assert len(bundles) == 1
        # And the advertised replay command round-trips.
        rc = main(["--replay", str(bundles[0]),
                   "--bundle-dir", str(tmp_path)])
        assert rc == 1
