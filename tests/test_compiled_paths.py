"""Compiled delivery paths (PR 2): flow cache, graph truth, bench knobs.

Covers the tentpole and satellites of the compiled-path refactor:

* the ``ProtocolGraph`` stays authoritative -- a direct
  ``HandlerHandle.uninstall()`` drops the edge from ``render()`` and the
  node in/out edge lists immediately;
* ``REPRO_FLOW_CACHE=0`` falls back to linear dispatch with simulated
  time bit-identical to the cached path;
* flow-cache counters appear in the wallclock report (schema 2);
* ``REPRO_BENCH_WARN_PCT`` tunes the throughput-regression warning;
* the tracer decodes TCP options (MSS, window scale).
"""

import pytest

from repro.bench.regression import DEFAULT_WARN_PCT, bench_warn_pct
from repro.bench.testbed import build_testbed
from repro.bench.wallclock import (WORKLOADS, compare_to_baseline,
                                   run_workload)
from repro.core import Credential, ProtocolGraph
from repro.lang import ephemeral
from repro.net.trace import PacketTracer, _decode_tcp_options
from repro.spin.flowcache import FlowCache, flow_cache_enabled


@ephemeral
def _sink(m, off, src_ip, src_port, dst_ip, dst_port):
    pass


# ---------------------------------------------------------------------------
# graph bookkeeping stays truthful
# ---------------------------------------------------------------------------

class TestGraphStaysAuthoritative:
    def test_direct_uninstall_drops_edge(self, kernel):
        graph = ProtocolGraph(kernel)
        eth = graph.add_node("ethernet", "protocol")
        ip = graph.add_node("ip", "protocol")
        event = kernel.dispatcher.declare("Ethernet.PacketRecv")
        edge = graph.install(event, lambda *a: None, eth, ip, label="ip-in")
        handle = edge.handle
        assert graph.edge_count() == 1
        assert "--> ip" in graph.render()

        # Uninstalling through the *handle* (not graph.remove_edge) must
        # still unlink the edge: the graph may not drift from dispatch.
        handle.uninstall()
        assert graph.edge_count() == 0
        assert "--> ip" not in graph.render()
        assert all(e.handle is not handle for e in eth.out_edges)
        assert all(e.handle is not handle for e in ip.in_edges)

    def test_uninstall_is_idempotent_with_remove_edge(self, kernel):
        graph = ProtocolGraph(kernel)
        a = graph.add_node("a", "protocol")
        b = graph.add_node("b", "extension")
        event = kernel.dispatcher.declare("A.Evt")
        edge = graph.install(event, lambda *a: None, a, b)
        handle = edge.handle
        graph.remove_edge(edge)
        assert not handle.installed
        assert graph.edge_count() == 0
        # remove_edge a second time is a no-op (edge already unlinked)...
        graph.remove_edge(edge)
        assert graph.edge_count() == 0
        # ...while a direct double-uninstall stays a dispatcher error.
        with pytest.raises(Exception):
            handle.uninstall()

    def test_install_bumps_generation(self, kernel):
        event = kernel.dispatcher.declare("X.Evt")
        before = event.generation
        handle = kernel.dispatcher.install(event, lambda *a: None)
        assert event.generation > before
        during = event.generation
        handle.uninstall()
        assert event.generation > during


# ---------------------------------------------------------------------------
# flow cache: observability and the escape hatch
# ---------------------------------------------------------------------------

def _udp_quick_fingerprint():
    fn, quick, _full = WORKLOADS["udp_pingpong"]
    record = fn(quick)
    return record["fingerprint"], record["flow_cache"]


class TestFlowCache:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLOW_CACHE", raising=False)
        assert flow_cache_enabled()
        assert FlowCache().enabled

    def test_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLOW_CACHE", "0")
        assert not flow_cache_enabled()
        cache = FlowCache()
        assert not cache.enabled
        assert cache.entry_for(("k",)) is None

    def test_cache_off_is_bit_identical(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLOW_CACHE", raising=False)
        cached_fp, cached_counters = _udp_quick_fingerprint()
        assert cached_counters["enabled"]
        assert cached_counters["hits"] > 0

        monkeypatch.setenv("REPRO_FLOW_CACHE", "0")
        linear_fp, linear_counters = _udp_quick_fingerprint()
        assert not linear_counters["enabled"]
        assert linear_counters["hits"] == 0

        # Replay charges identical simulated costs in identical order.
        assert cached_fp == linear_fp

    def test_hits_after_warmup(self, spin_pair):
        bed = spin_pair
        receiver = bed.stacks[1].udp_manager.bind(Credential("s"), 7000, _sink)
        assert receiver is not None
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _sink)

        def send_one():
            sender.send(b"x" * 16, bed.ip(1), 7000)
        for _ in range(4):
            bed.engine.run_process(bed.hosts[0].kernel_path(send_one))
            bed.engine.run()
        counters = bed.hosts[1].dispatcher.flow_cache.counters()
        if counters["enabled"]:  # honours an externally-set escape hatch
            assert counters["entries"] >= 1
            # First packet of the flow records plans; later packets replay.
            assert counters["hits"] > 0

    def test_uninstall_invalidates_plan(self, spin_pair):
        """After uninstalling a handler, cached flows must not call it."""
        bed = spin_pair
        hits = []

        @ephemeral
        def on_dgram(m, off, src_ip, src_port, dst_ip, dst_port):
            hits.append(dst_port)

        receiver = bed.stacks[1].udp_manager.bind(
            Credential("s"), 7000, on_dgram)
        sender = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _sink)

        def send_one():
            sender.send(b"x" * 16, bed.ip(1), 7000)
        for _ in range(3):
            bed.engine.run_process(bed.hosts[0].kernel_path(send_one))
            bed.engine.run()
        delivered_before = len(hits)
        assert delivered_before == 3

        receiver.close()  # uninstalls the bound handler
        bed.engine.run_process(bed.hosts[0].kernel_path(send_one))
        bed.engine.run()
        assert len(hits) == delivered_before  # stale plan did not replay

    def test_counters_in_wallclock_report(self):
        record = run_workload("dispatcher_micro", quick=True)
        assert "flow_cache" in record
        for key in ("enabled", "hits", "misses", "invalidations",
                    "evictions", "entries"):
            assert key in record["flow_cache"]
        # The flow-cache section must not leak into the fingerprint.
        assert "flow_cache" not in record["fingerprint"]


# ---------------------------------------------------------------------------
# REPRO_BENCH_WARN_PCT
# ---------------------------------------------------------------------------

class TestBenchWarnPct:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_WARN_PCT", raising=False)
        assert bench_warn_pct() == DEFAULT_WARN_PCT

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WARN_PCT", "35")
        assert bench_warn_pct() == 35.0

    def test_invalid_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WARN_PCT", "lots")
        assert bench_warn_pct() == DEFAULT_WARN_PCT

    def test_negative_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WARN_PCT", "-5")
        assert bench_warn_pct() == DEFAULT_WARN_PCT

    def test_compare_to_baseline_uses_env(self, monkeypatch):
        report = {
            "quick": True,
            "workloads": {
                "w": {"fingerprint": {"f": 1}, "events_per_sec": 50.0},
            },
        }
        baseline = {
            "quick": {
                "workloads": {
                    "w": {"fingerprint": {"f": 1}, "events_per_sec": 100.0},
                },
            },
        }
        # 50% of baseline: warns under the default 20% threshold...
        monkeypatch.delenv("REPRO_BENCH_WARN_PCT", raising=False)
        rows = compare_to_baseline(report, baseline)
        assert rows["w"]["warnings"]
        assert rows["w"]["ok"]  # slowdowns warn, never error
        # ...and stays quiet when the env var loosens it to 60%.
        monkeypatch.setenv("REPRO_BENCH_WARN_PCT", "60")
        rows = compare_to_baseline(report, baseline)
        assert not rows["w"]["warnings"]


# ---------------------------------------------------------------------------
# tracer: TCP options
# ---------------------------------------------------------------------------

class TestTraceTcpOptions:
    def test_decode_mss_and_window_scale(self):
        options = bytes([2, 4, 0x23, 0xC4]) + bytes([1]) + bytes([3, 3, 7])
        assert _decode_tcp_options(options) == "mss 9156,nop,ws 7"

    def test_decode_unknown_and_eol(self):
        options = bytes([8, 10]) + bytes(8) + bytes([0])
        assert _decode_tcp_options(options) == "opt-8,eol"

    def test_decode_malformed(self):
        assert _decode_tcp_options(bytes([2, 44, 1])) == "malformed"

    def test_handshake_shows_mss(self):
        bed = build_testbed("spin", "ethernet")
        tracer = PacketTracer(bed.engine)
        tracer.attach(bed.nics[0])
        tracer.attach(bed.nics[1])
        bed.stacks[1].tcp_manager.listen(Credential("s"), 9000,
                                         lambda tcb: None)
        bed.engine.run_process(bed.hosts[0].kernel_path(
            lambda: bed.stacks[0].tcp_manager.connect(
                Credential("c"), bed.ip(1), 9000)))
        bed.engine.run()
        # Both SYN and SYN|ACK advertise the Ethernet MSS (1500 - 40).
        syns = tracer.matching("opts=[mss 1460]")
        assert len(syns) >= 2
        # Data-less ACKs carry no options and no opts=[] noise.
        acks = tracer.matching("[ACK]")
        assert acks and all("opts=" not in r.summary for r in acks)
