"""Cross-system integration scenarios.

Full-stack flows that exercise several subsystems at once: both OS models
against each other's claims, all three devices, and mixed workloads.
"""

import pytest

from repro.bench.testbed import build_testbed
from repro.core import Credential
from repro.lang import ephemeral
from repro.sim import Signal


@ephemeral
def _noop(m, off, src_ip, src_port, dst_ip, dst_port):
    pass


@pytest.mark.parametrize("device", ["ethernet", "atm", "t3"])
class TestAllDevices:
    def test_spin_udp_roundtrip(self, device):
        bed = build_testbed("spin", device)
        engine = bed.engine
        got = Signal(engine)
        server_ep = None

        @ephemeral
        def echo(m, off, src_ip, src_port, dst_ip, dst_port):
            server_ep.send(bytes(m.to_bytes()[off:]), src_ip, src_port)
        server_ep = bed.stacks[1].udp_manager.bind(
            Credential("srv"), 7000, echo)
        seen = []
        host = bed.hosts[0]

        @ephemeral
        def recv(m, off, src_ip, src_port, dst_ip, dst_port):
            seen.append(bytes(m.to_bytes()[off:]))
            host.defer(got.fire)
        client_ep = bed.stacks[0].udp_manager.bind(
            Credential("cli"), 7001, recv)

        def ping():
            waiter = got.wait()
            yield from host.kernel_path(
                lambda: client_ep.send(b"dev:" + device.encode(),
                                       bed.ip(1), 7000))
            yield waiter
        engine.run_process(ping())
        assert seen == [b"dev:" + device.encode()]

    def test_unix_udp_roundtrip(self, device):
        bed = build_testbed("unix", device)
        engine = bed.engine

        def server():
            sock = bed.sockets[1].udp_socket()
            yield from sock.bind(7000)
            data, addr = yield from sock.recvfrom()
            yield from sock.sendto(data, addr)

        def client():
            sock = bed.sockets[0].udp_socket()
            yield from sock.bind(7001)
            yield from sock.sendto(b"ping", (bed.ip(1), 7000))
            data, _addr = yield from sock.recvfrom()
            return data
        engine.process(server(), name="server")
        assert engine.run_process(client(), name="client") == b"ping"

    def test_spin_tcp_bulk(self, device):
        bed = build_testbed("spin", device)
        engine = bed.engine
        total = 100_000
        state = {"received": 0}
        done = Signal(engine)

        def on_accept(tcb):
            def on_data(data):
                state["received"] += len(data)
                if state["received"] >= total:
                    bed.hosts[1].defer(done.fire)
            tcb.on_data = on_data
        bed.stacks[1].tcp_manager.listen(Credential("srv"), 9000, on_accept)
        chunk = bytes(16_384)

        def run():
            box = {"sent": 0}

            def connect():
                tcb = bed.stacks[0].tcp_manager.connect(
                    Credential("cli"), bed.ip(1), 9000)

                def pump(_space=None):
                    while box["sent"] < total and tcb.send_space > 0:
                        n = tcb.send(chunk[:total - box["sent"]])
                        box["sent"] += n
                        if n == 0:
                            break
                tcb.on_established = pump
                tcb.on_sendable = pump
            waiter = done.wait()
            yield from bed.hosts[0].kernel_path(connect)
            yield waiter
        engine.run_process(run())
        assert state["received"] == total


class TestLatencyOrderingInvariants:
    """The paper's headline comparisons, as repeatable assertions."""

    def test_kernel_extensions_beat_sockets_everywhere(self):
        from repro.bench.latency import (
            measure_plexus_udp_rtt,
            measure_unix_udp_rtt,
        )
        for device in ("ethernet", "atm", "t3"):
            plexus = measure_plexus_udp_rtt(device, trips=4).mean
            unix = measure_unix_udp_rtt(device, trips=4).mean
            assert plexus < unix, device

    def test_interrupt_beats_thread_everywhere(self):
        from repro.bench.latency import measure_plexus_udp_rtt
        for device in ("ethernet", "atm", "t3"):
            interrupt = measure_plexus_udp_rtt(device, "interrupt", trips=4)
            thread = measure_plexus_udp_rtt(device, "thread", trips=4)
            assert interrupt.mean < thread.mean, device


class TestConcurrentWorkloads:
    def test_tcp_and_udp_share_the_stack(self, spin_pair):
        bed = spin_pair
        engine = bed.engine
        udp_seen = []
        tcp_state = {"received": 0}
        both_done = Signal(engine)

        @ephemeral
        def udp_handler(m, off, src_ip, src_port, dst_ip, dst_port):
            udp_seen.append(m.length() - off)
        bed.stacks[1].udp_manager.bind(Credential("u"), 7100, udp_handler)

        def on_accept(tcb):
            tcb.on_data = (
                lambda data: tcp_state.__setitem__(
                    "received", tcp_state["received"] + len(data)))
        bed.stacks[1].tcp_manager.listen(Credential("t"), 9100, on_accept)

        udp_ep = bed.stacks[0].udp_manager.bind(Credential("c"), 7101, _noop)
        host = bed.hosts[0]

        def run():
            def work():
                tcb = bed.stacks[0].tcp_manager.connect(
                    Credential("c2"), bed.ip(1), 9100)
                tcb.on_established = lambda: tcb.send(bytes(5000))
                for _ in range(3):
                    udp_ep.send(bytes(256), bed.ip(1), 7100)
            yield from host.kernel_path(work)
        engine.run_process(run())
        engine.run(until=engine.now + 200_000.0)
        assert udp_seen == [256, 256, 256]
        assert tcp_state["received"] == 5000

    def test_many_endpoints_demux_correctly(self, spin_pair):
        bed = spin_pair
        engine = bed.engine
        counts = {}

        def make(port):
            @ephemeral
            def handler(m, off, src_ip, src_port, dst_ip, dst_port):
                counts[dst_port] = counts.get(dst_port, 0) + 1
            return handler
        for port in range(7000, 7016):
            bed.stacks[1].udp_manager.bind(Credential("p%d" % port), port,
                                           make(port))
        sender = bed.stacks[0].udp_manager.bind(Credential("s"), 6999, _noop)
        host = bed.hosts[0]

        def blast():
            def work():
                for port in range(7000, 7016):
                    sender.send(b"x", bed.ip(1), port)
            yield from host.kernel_path(work)
        engine.run_process(blast())
        engine.run()
        assert counts == {port: 1 for port in range(7000, 7016)}

    def test_utilization_accounting_is_consistent(self, spin_pair):
        """Busy time never exceeds wall time on any host."""
        bed = spin_pair
        engine = bed.engine
        server_ep = None

        @ephemeral
        def echo(m, off, src_ip, src_port, dst_ip, dst_port):
            server_ep.send(bytes(m.to_bytes()[off:]), src_ip, src_port)
        server_ep = bed.stacks[1].udp_manager.bind(Credential("s"), 7000, echo)
        client_ep = bed.stacks[0].udp_manager.bind(Credential("c"), 7001, _noop)
        host = bed.hosts[0]

        def blast():
            for _ in range(20):
                yield from host.kernel_path(
                    lambda: client_ep.send(bytes(512), bed.ip(1), 7000))
        engine.run_process(blast())
        engine.run()
        for machine in bed.hosts:
            assert machine.cpu.busy_time <= engine.now + 1e-6
            assert machine.cpu.open_accumulators == 0
