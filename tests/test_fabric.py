"""Directed tests for the match-action switch fabric.

Covers the pieces the property suite treats as black boxes: LPM
longest-prefix tie-breaks, table-miss default actions and fall-through,
Modify + checksum re-folding (IP always, L4 when the pseudo-header
changed), counter exactness against a PacketTracer tally, mid-run table
updates at a deterministic simulated time, and the open-loop source's
statistical contract.
"""

import struct

import pytest

from repro.core.manager import Credential
from repro.fabric.ecmp import ecmp_select
from repro.fabric.table import (Count, Drop, Forward, MatchTable, Modify,
                                PacketFields, apply_modify, refold_checksums)
from repro.fabric.topology import (fat_tree, fat_tree_core_wires, leaf_spine,
                                   linear_chain)
from repro.fabric.traffic import OpenLoopSource
from repro.lang.ephemeral import ephemeral
from repro.net.checksum import internet_checksum
from repro.net.headers import IPPROTO_UDP, ip_aton, pseudo_header_sum
from repro.net.trace import PacketTracer

IP_A = ip_aton("10.0.0.2")
IP_B = ip_aton("10.0.1.2")
PORT = 7000


def make_udp_frame(src_ip, dst_ip, src_port=1111, dst_port=2222,
                   payload=b"x" * 16, ttl=64, tos=0, zero_udp_cksum=False):
    """A raw-link IPv4/UDP frame with correct checksums (unless opted out)."""
    udp_len = 8 + len(payload)
    udp = bytearray(struct.pack(">HHHH", src_port, dst_port, udp_len, 0))
    udp += payload
    if not zero_udp_cksum:
        folded = internet_checksum(
            udp, initial=pseudo_header_sum(src_ip, dst_ip, IPPROTO_UDP,
                                           udp_len))
        udp[6:8] = (folded or 0xFFFF).to_bytes(2, "big")
    header = bytearray(struct.pack(">BBHHHBBHII", 0x45, tos, 20 + udp_len,
                                   0, 0, ttl, IPPROTO_UDP, 0, src_ip, dst_ip))
    header[10:12] = internet_checksum(header).to_bytes(2, "big")
    return bytes(header + udp)


def ip_checksum_ok(frame) -> bool:
    header_len = (frame[0] & 0x0F) * 4
    return internet_checksum(frame[:header_len]) == 0


def udp_checksum_ok(frame) -> bool:
    header_len = (frame[0] & 0x0F) * 4
    src = int.from_bytes(frame[12:16], "big")
    dst = int.from_bytes(frame[16:20], "big")
    segment = frame[header_len:]
    return internet_checksum(
        segment, initial=pseudo_header_sum(src, dst, IPPROTO_UDP,
                                           len(segment))) == 0


class UdpHarness:
    """Bind a receiver on one fabric host, stream datagrams from another."""

    def __init__(self, bed, src=0, dst=1, dst_ip=IP_B, port=PORT):
        self.bed = bed
        self.engine = bed.engine
        self.src = src
        self.dst_ip = dst_ip
        self.port = port
        self.received = []

        engine = self.engine
        received = self.received

        @ephemeral
        def handler(m, off, src_ip, src_port, dst_ip_, dst_port):
            received.append((engine.now, bytes(m.to_bytes()[off:])))

        bed.stacks[dst].udp_manager.bind(Credential("fab-test-rx"), port,
                                         handler)
        self.endpoint = bed.stacks[src].udp_manager.bind(
            Credential("fab-test-tx"), port + 1, handler)

    def send(self, payloads, gap_us=400.0):
        engine, endpoint = self.engine, self.endpoint
        host, dst_ip, port = self.bed.hosts[self.src], self.dst_ip, self.port

        def sender():
            for payload in payloads:
                yield engine.pooled_timeout(gap_us)
                yield from host.kernel_path(
                    lambda data=payload: endpoint.send(data, dst_ip, port))

        engine.process(sender(), name="fab-test-src")

    def payloads(self):
        return [payload for _, payload in self.received]


class TestMatchTable:
    def _fields_for(self, dst_ip, dst_port=2222):
        return PacketFields(make_udp_frame(IP_A, dst_ip, dst_port=dst_port))

    def test_lpm_longest_prefix_wins(self):
        table = MatchTable("l3", "dst_ip", kind="lpm")
        table.set(0, (Forward(0),), prefix_len=0)
        table.set(ip_aton("10.1.0.0"), (Forward(1),), prefix_len=16)
        table.set(ip_aton("10.1.2.0"), (Forward(2),), prefix_len=24)

        def egress(dotted):
            return table.lookup(self._fields_for(ip_aton(dotted)))[0].ports

        assert egress("10.1.2.9") == (2,)     # /24 beats /16 beats /0
        assert egress("10.1.9.9") == (1,)
        assert egress("192.0.2.1") == (0,)
        # Replace-on-reinstall: the fresh entry wins, no shadowed copy.
        table.set(ip_aton("10.1.2.0"), (Forward(5),), prefix_len=24)
        assert egress("10.1.2.9") == (5,)
        assert table.remove(ip_aton("10.1.2.0"), prefix_len=24)
        assert egress("10.1.2.9") == (1,)     # falls back to the /16

    def test_exact_miss_uses_default_actions(self):
        table = MatchTable("acl", "dst_port", default=(Drop(),))
        table.set(2222, (Forward(0),))
        hit = table.lookup(self._fields_for(IP_B, dst_port=2222))
        assert isinstance(hit[0], Forward)
        miss = table.lookup(self._fields_for(IP_B, dst_port=9999))
        assert isinstance(miss[0], Drop)
        assert (table.hits, table.misses) == (1, 1)

    def test_miss_with_no_default_returns_none(self):
        table = MatchTable("acl", "dst_port")
        assert table.lookup(self._fields_for(IP_B)) is None
        assert table.misses == 1

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            MatchTable("t", "payload_len")
        with pytest.raises(ValueError):
            MatchTable("t", "dst_ip", kind="ternary")
        with pytest.raises(ValueError):
            MatchTable("t", "dst_port", kind="lpm")
        with pytest.raises(ValueError):
            MatchTable("t", "dst_port").set(1, (Forward(0),), prefix_len=8)
        with pytest.raises(ValueError):
            MatchTable("t", "dst_ip", kind="lpm").set(1, (Forward(0),))
        with pytest.raises(ValueError):
            MatchTable("t", "dst_port").set(1, ())
        with pytest.raises(ValueError):
            Forward()
        with pytest.raises(ValueError):
            Modify("dst_port", 1)


class TestChecksumRefold:
    def test_parse_udp_frame(self):
        frame = make_udp_frame(IP_A, IP_B, src_port=1111, dst_port=2222,
                               ttl=17, tos=0x10)
        fields = PacketFields(frame)
        assert fields.ok
        assert (fields.src_ip, fields.dst_ip) == (IP_A, IP_B)
        assert (fields.src_port, fields.dst_port) == (1111, 2222)
        assert (fields.proto, fields.ttl, fields.tos) == (IPPROTO_UDP, 17,
                                                          0x10)

    def test_truncated_frame_is_not_ok(self):
        assert not PacketFields(b"\x45\x00\x00").ok
        assert not PacketFields(b"\x60" + b"\x00" * 30).ok  # IPv6 version

    def test_modify_dst_ip_refolds_l4(self):
        frame = bytearray(make_udp_frame(IP_A, IP_B))
        fields = PacketFields(frame)
        new_dst = ip_aton("10.0.9.9")
        refold_l4 = apply_modify(frame, fields, Modify("dst_ip", new_dst))
        assert refold_l4 and fields.dst_ip == new_dst
        refold_checksums(frame, refold_l4)
        assert ip_checksum_ok(frame)
        assert udp_checksum_ok(frame)

    def test_modify_ttl_keeps_l4_checksum_bytes(self):
        frame = bytearray(make_udp_frame(IP_A, IP_B))
        before = bytes(frame[26:28])  # UDP checksum field
        fields = PacketFields(frame)
        refold_l4 = apply_modify(frame, fields, Modify("ttl", 3))
        assert not refold_l4
        refold_checksums(frame, refold_l4)
        assert frame[8] == 3 and ip_checksum_ok(frame)
        assert bytes(frame[26:28]) == before

    def test_udp_zero_checksum_stays_zero(self):
        frame = bytearray(make_udp_frame(IP_A, IP_B, zero_udp_cksum=True))
        fields = PacketFields(frame)
        refold_l4 = apply_modify(frame, fields,
                                 Modify("dst_ip", ip_aton("10.0.9.9")))
        refold_checksums(frame, refold_l4)
        assert ip_checksum_ok(frame)
        assert bytes(frame[26:28]) == b"\x00\x00"  # RFC 768 opt-out


class TestPipeline:
    def test_single_switch_chain_delivers(self):
        # Regression: with one switch, host B hangs off port 1, not a
        # second tap on port 0's wire.
        bed = linear_chain(1)
        harness = UdpHarness(bed)
        harness.send([bytes([i]) * 32 for i in range(5)])
        bed.engine.run()
        assert harness.payloads() == [bytes([i]) * 32 for i in range(5)]
        switch = bed.switches[0]
        assert switch.pipeline_packets == switch.pipeline_forwarded == 5
        assert switch.pipeline_dropped == 0
        assert bed.switch_conservation() == []

    def test_miss_falls_through_then_default_drops(self):
        bed = linear_chain(1)
        switch = bed.switches[0]
        acl = MatchTable("acl", "dst_port")   # no entries, no default
        switch.tables.insert(0, acl)
        harness = UdpHarness(bed)
        harness.send([b"a"] * 3)
        bed.engine.run()
        assert len(harness.received) == 3     # miss fell through to l3
        assert acl.misses == 3

        acl.default = (Count("acl-drops"), Drop())
        harness.send([b"b"] * 4)
        bed.engine.run()
        assert len(harness.received) == 3     # the default now drops
        assert switch.counters["acl-drops"] == 4
        assert switch.pipeline_dropped == 4
        assert bed.switch_conservation() == []

    def test_modify_ttl_counts_and_survives_receiver_checks(self):
        bed = linear_chain(1)
        switch = bed.switches[0]
        switch.tables[0].set(
            IP_B, (Count("rewritten"), Modify("ttl", 7), Forward(1)),
            prefix_len=32)
        tracer = PacketTracer(bed.engine)
        tracer.attach(bed.nics[1], link_kind="raw")
        harness = UdpHarness(bed)
        harness.send([b"m"] * 4)
        bed.engine.run()
        assert len(harness.received) == 4
        assert switch.counters["rewritten"] == 4
        assert switch.pipeline_modified == 4
        arrived = [r for r in tracer.records if r.direction == "rx"]
        assert len(arrived) == 4
        for record in arrived:
            assert record.data[8] == 7
            assert ip_checksum_ok(record.data)
            assert udp_checksum_ok(record.data)

    def test_modify_dst_ip_rewrites_like_nat(self):
        bed = linear_chain(1)
        switch = bed.switches[0]
        vip = ip_aton("10.0.9.9")
        switch.tables[0].set(vip, (Modify("dst_ip", IP_B), Forward(1)),
                             prefix_len=32)
        bed.stacks[0].rawlink.add_neighbor(vip, "fx-c0.0")
        harness = UdpHarness(bed, dst_ip=vip)
        harness.send([b"nat"] * 3)
        bed.engine.run()
        # The receiver only accepts its own IP, so delivery proves the
        # rewrite landed with valid IP + pseudo-header UDP checksums.
        assert len(harness.received) == 3
        assert switch.pipeline_modified == 3

    def test_counters_match_tracer_tally(self):
        bed = linear_chain(2)
        for switch in bed.switches:
            switch.tables[0].set(IP_B, (Count("a2b"), Forward(1)),
                                 prefix_len=32)
        tracer = PacketTracer(bed.engine)
        tracer.attach(bed.switches[0].ports[1].nic, link_kind="raw")
        tracer.attach(bed.switches[1].ports[0].nic, link_kind="raw")
        harness = UdpHarness(bed)
        harness.send([bytes([i]) * 16 for i in range(6)])
        bed.engine.run()
        assert len(harness.received) == 6
        sent_hop = [r for r in tracer.records
                    if r.nic_name == "p1" and r.direction == "tx"]
        recv_hop = [r for r in tracer.records
                    if r.nic_name == "p0" and r.direction == "rx"]
        for switch in bed.switches:
            assert switch.counters["a2b"] == len(sent_hop) == len(recv_hop) \
                == 6
        assert bed.switches[0].ports[1].forwarded == len(sent_hop)
        assert bed.switches[1].ports[0].received == len(recv_hop)

    def test_mid_run_table_update_is_deterministic(self):
        def run_once():
            bed = linear_chain(1)
            switch = bed.switches[0]
            harness = UdpHarness(bed)
            harness.send([bytes([i]) * 8 for i in range(10)], gap_us=1000.0)

            def cutover(_event=None):
                switch.tables[0].set(IP_B, (Drop(),), prefix_len=32)

            bed.engine.call_at(4_500.0, cutover)
            bed.engine.run(until=40_000.0)
            assert bed.switch_conservation() == []
            return (harness.payloads(), switch.pipeline_dropped,
                    bed.engine.now)

        first, second = run_once(), run_once()
        assert first == second
        payloads, dropped, _ = first
        assert 0 < len(payloads) < 10          # the cutover landed mid-run
        assert dropped == 10 - len(payloads)   # every frame met one fate


class TestTopologies:
    def test_leaf_spine_delivers_and_conserves(self):
        bed = leaf_spine(2, 2)
        harness = UdpHarness(bed, src=0, dst=1, dst_ip=ip_aton("10.0.1.2"))
        harness.send([b"ls"] * 6)
        bed.engine.run()
        assert len(harness.received) == 6
        assert bed.switch_conservation() == []
        spines = [s for s in bed.switches if s.name.startswith("fab-s")]
        leaf0 = next(s for s in bed.switches if s.name == "fab-l0")
        assert sum(s.pipeline_packets for s in spines) == 6
        assert leaf0.ecmp_decisions == 6       # 2 spines -> every uplink hashes

    def test_fat_tree_core_wires_matches_bed(self):
        bed = fat_tree(4)
        agg_core = tuple(i for i, name in enumerate(bed.wire_names)
                         if name.startswith("agg-core:"))
        assert fat_tree_core_wires(4) == agg_core
        core0 = tuple(i for i, name in enumerate(bed.wire_names)
                      if name.startswith("agg-core:") and name.endswith("c0"))
        assert fat_tree_core_wires(4, core=0) == core0

    def test_linear_chain_rejects_empty(self):
        with pytest.raises(ValueError):
            linear_chain(0)
        with pytest.raises(ValueError):
            leaf_spine(1, 1)


class TestEcmp:
    def test_deterministic_and_in_range(self):
        for src_port in range(64):
            first = ecmp_select(9, IPPROTO_UDP, IP_A, IP_B, src_port, 80, 4)
            again = ecmp_select(9, IPPROTO_UDP, IP_A, IP_B, src_port, 80, 4)
            assert first == again
            assert 0 <= first < 4

    def test_degenerate_group_sizes(self):
        assert ecmp_select(1, IPPROTO_UDP, IP_A, IP_B, 1, 2, 1) == 0
        with pytest.raises(ValueError):
            ecmp_select(1, IPPROTO_UDP, IP_A, IP_B, 1, 2, 0)

    def test_flows_spread_across_the_group(self):
        counts = [0] * 4
        for src_port in range(512):
            counts[ecmp_select(1996, IPPROTO_UDP, IP_A, IP_B,
                               src_port, 9000, 4)] += 1
        assert min(counts) > 512 // 16         # no starved member
        assert sum(counts) == 512

    def test_seed_perturbs_the_hash(self):
        picks_a = [ecmp_select(1, IPPROTO_UDP, IP_A, IP_B, p, 80, 4)
                   for p in range(64)]
        picks_b = [ecmp_select(2, IPPROTO_UDP, IP_A, IP_B, p, 80, 4)
                   for p in range(64)]
        assert picks_a != picks_b


class TestOpenLoopSource:
    def test_seeded_replay_is_bit_exact(self):
        kwargs = dict(arrival="pareto", arrival_alpha=2.5,
                      size_dist="pareto")
        assert OpenLoopSource(7, **kwargs).schedule(64) == \
            OpenLoopSource(7, **kwargs).schedule(64)
        assert OpenLoopSource(7).schedule(64) != OpenLoopSource(8).schedule(64)

    def test_schedule_prefix_property(self):
        source = OpenLoopSource(11, size_dist="pareto")
        assert source.schedule(50) == source.schedule(130)[:50]

    def test_poisson_gap_mean(self):
        gaps = [gap for gap, _ in OpenLoopSource(3).schedule(4000)]
        mean = sum(gaps) / len(gaps)
        assert 90.0 < mean < 110.0             # fixed seed: no flake margin

    def test_pareto_gap_normalisation_preserves_the_mean(self):
        source = OpenLoopSource(5, arrival="pareto", arrival_alpha=2.5,
                                mean_gap_us=200.0)
        gaps = [gap for gap, _ in source.schedule(4000)]
        mean = sum(gaps) / len(gaps)
        assert 170.0 < mean < 230.0

    def test_sizes_respect_bounds(self):
        fixed = OpenLoopSource(1, fixed_size=256)
        assert {size for _, size in fixed.schedule(32)} == {256}
        pareto = OpenLoopSource(1, size_dist="pareto", min_size=32,
                                max_size=1400)
        sizes = [size for _, size in pareto.schedule(2000)]
        assert all(32 <= size <= 1400 for size in sizes)
        assert max(sizes) == 1400              # the clamp engages
        assert sum(sizes) / len(sizes) > 32

    def test_mean_offered_load(self):
        source = OpenLoopSource(1, mean_gap_us=100.0, fixed_size=256)
        assert source.mean_offered_load_bps() == 256 * 8 / 100e-6

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OpenLoopSource(1, arrival="uniform")
        with pytest.raises(ValueError):
            OpenLoopSource(1, size_dist="bimodal")
        with pytest.raises(ValueError):
            OpenLoopSource(1, mean_gap_us=0.0)
        with pytest.raises(ValueError):
            OpenLoopSource(1, arrival="pareto", arrival_alpha=1.0)
        with pytest.raises(ValueError):
            OpenLoopSource(1, min_size=0)
        with pytest.raises(ValueError):
            OpenLoopSource(1, min_size=200, max_size=100)
