"""Scale-out tests: timer wheel, many-flow workload, LRU flow cache,
port-reference indexing, and the parallel bench runner.

The load-bearing property here is *bit-identical simulated time*: the
timer wheel, the indexed demultiplexing, and the process-pool runner are
all wall-clock optimizations that must be unobservable on the simulated
timeline.  The hypothesis test drives a wheel-backed engine and a
heap-only engine with the same randomized schedule/cancel program and
requires the exact same firing order and timestamps.
"""

import heapq

from hypothesis import given, settings, strategies as st

from repro.bench.wallclock import WORKLOADS, _many_flows
from repro.sim import Engine
from repro.spin.flowcache import FlowCache

from nethelpers import make_pair


# ---------------------------------------------------------------------------
# timer wheel vs heap equivalence
# ---------------------------------------------------------------------------

def _heap_schedule(engine, delay_us, callback, priority=0):
    """The pre-wheel path: claim a sequence and push the heap tuple now."""
    event = engine._checkout(None, None)
    event.callbacks.append(callback)
    engine._sequence += 1
    heapq.heappush(engine._heap,
                   (engine.now + delay_us, priority, engine._sequence, event))


def _run_program(ops, use_wheel):
    """Run a schedule/cancel program; returns [(op index, fire time)]."""
    engine = Engine()
    fired = []
    flags = []
    handles = []

    def driver():
        for index, (gap, delay, priority, cancel) in enumerate(ops):
            yield engine.timeout(float(gap))
            flag = {"cancelled": False}
            flags.append(flag)

            def callback(_event, index=index, flag=flag):
                if not flag["cancelled"]:
                    fired.append((index, engine.now))

            if use_wheel:
                handles.append(
                    engine.wheel.schedule(float(delay), callback, priority))
            else:
                handles.append(None)
                _heap_schedule(engine, float(delay), callback, priority)
            if cancel is not None:
                victim = cancel % len(handles)
                # Cancellation is flag-based in both engines (that is what
                # repro.hw.host.Timer does); the wheel additionally drops
                # the carcass from its bucket.
                flags[victim]["cancelled"] = True
                if handles[victim] is not None:
                    handles[victim].cancel()

    engine.process(driver(), name="schedule-program")
    engine.run()
    return fired, engine.now


# Delay bands chosen to land in every wheel level plus the two bypasses:
# already-due (level-0 cursor), levels 0-2, and beyond-horizon (straight
# to the heap).
_delays = st.one_of(
    st.integers(0, 2_000),               # level 0 (256 us buckets)
    st.integers(0, 500_000),             # level 1
    st.integers(0, 30_000_000),          # level 2
    st.integers(0, 6_000_000_000),       # partly beyond the horizon
)

_ops = st.lists(
    st.tuples(st.integers(0, 3_000),     # gap before this op
              _delays,                   # timer delay
              st.integers(0, 3),         # priority
              st.one_of(st.none(), st.integers(0, 100))),  # cancel victim
    min_size=1, max_size=30)


class TestWheelHeapEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(_ops)
    def test_identical_firing_order_and_timestamps(self, ops):
        wheel_fired, wheel_now = _run_program(ops, use_wheel=True)
        heap_fired, heap_now = _run_program(ops, use_wheel=False)
        assert wheel_fired == heap_fired
        # The observable timeline (every fire) is identical.  The final
        # *idle* clock may differ: a cancelled carcass still pops off the
        # heap engine and drags its clock forward, while the wheel drops
        # it in its bucket -- so the wheel engine can only finish earlier.
        assert wheel_now <= heap_now
        if wheel_fired:
            assert wheel_now >= wheel_fired[-1][1]

    def test_cancelled_timer_never_fires(self):
        engine = Engine()
        fired = []
        handle = engine.wheel.schedule(1_000.0, lambda e: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []
        assert engine.wheel.pending == 0

    def test_same_bucket_fires_in_schedule_order(self):
        engine = Engine()
        fired = []
        # Same deadline, same priority: sequence (claimed at schedule
        # time) must break the tie in schedule order even though both
        # share one level-0 bucket.
        engine.wheel.schedule(100.0, lambda e: fired.append("first"))
        engine.wheel.schedule(100.0, lambda e: fired.append("second"))
        engine.run()
        assert fired == ["first", "second"]
        assert engine.now == 100.0

    def test_beyond_horizon_goes_straight_to_heap(self):
        engine = Engine()
        fired = []
        engine.wheel.schedule(1e12, lambda e: fired.append(engine.now))
        assert engine.wheel.fired_direct == 1
        assert engine.wheel.pending == 0  # heap-resident, not parked
        engine.run()
        assert fired == [1e12]


# ---------------------------------------------------------------------------
# many-flow workload
# ---------------------------------------------------------------------------

class TestManyFlows:
    def test_quick_scale_meets_the_floor(self):
        # The acceptance bar: the quick bench run simulates >= 2000
        # concurrent flows.
        assert WORKLOADS["many_flows"][1] >= 2_000

    def test_all_flows_complete_and_overlap(self):
        record = _many_flows(400)
        fp = record["fingerprint"]
        assert fp["tcp_done"] == 200
        assert fp["udp_done"] == 200
        # Every TCP flow is open at once (the stagger is much shorter
        # than a connection lifetime): this is a concurrency test, not
        # just a completion test.
        assert fp["peak_conns"] == 200
        # 512 B pushed per TCP flow + 128 B echoed per UDP flow.
        assert fp["bytes_in"] == 200 * 512 + 200 * 128
        assert record["events"] > 0
        # Host-side metrics exist but are not fingerprint material.
        assert "per_flow_kb" in record
        assert "per_flow_kb" not in fp

    def test_fingerprint_ignores_flow_cache_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLOW_CACHE", "1")
        with_cache = _many_flows(200)["fingerprint"]
        monkeypatch.setenv("REPRO_FLOW_CACHE", "0")
        without_cache = _many_flows(200)["fingerprint"]
        assert with_cache == without_cache


# ---------------------------------------------------------------------------
# flow-cache LRU
# ---------------------------------------------------------------------------

class TestFlowCacheLru:
    def test_eviction_is_least_recently_used(self):
        cache = FlowCache(capacity=3)
        for key in ("a", "b", "c"):
            cache.entry_for((key,))
        cache.entry_for(("a",))          # recency order is now b, c, a
        cache.entry_for(("d",))          # evicts b, the coldest
        assert ("b",) not in cache.entries
        assert set(cache.entries) == {("a",), ("c",), ("d",)}
        assert cache.evictions == 1

    def test_touch_preserves_entry_identity(self):
        cache = FlowCache(capacity=2)
        entry = cache.entry_for(("flow",))
        entry.plans["event"] = "plan"
        assert cache.entry_for(("flow",)) is entry
        cache.entry_for(("other",))
        # Touching must not have discarded the compiled plans.
        assert cache.entry_for(("flow",)).plans == {"event": "plan"}

    def test_repeat_memo_does_not_break_recency(self):
        cache = FlowCache(capacity=2)
        cache.entry_for((1,))
        cache.entry_for((1,))            # memoized repeat (the hot case)
        cache.entry_for((2,))
        cache.entry_for((1,))            # real re-touch: order is 2, 1
        cache.entry_for((3,))            # evicts 2
        assert set(cache.entries) == {(1,), (3,)}

    def test_counters_stay_consistent_under_churn(self):
        cache = FlowCache(capacity=8)
        for i in range(1_000):
            cache.entry_for((i % 50,))
        # 50 distinct keys cycling through 8 slots: every access misses,
        # so each of the 1000 inserts past the first 8 evicted one entry.
        assert len(cache.entries) == 8
        assert cache.counters()["entries"] == 8
        assert cache.evictions == 1_000 - 8

    def test_capacity_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLOW_CACHE_CAP", "2")
        cache = FlowCache()
        assert cache.capacity == 2
        cache.entry_for((1,))
        cache.entry_for((2,))
        cache.entry_for((3,))
        assert len(cache.entries) == 2
        assert cache.evictions == 1
        monkeypatch.setenv("REPRO_FLOW_CACHE_CAP", "bogus")
        assert FlowCache().capacity == FlowCache.DEFAULT_CAPACITY

    def test_disabled_cache_caches_nothing(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLOW_CACHE", "0")
        cache = FlowCache(capacity=2)
        assert cache.entry_for(("flow",)) is None
        assert cache.entries == {}


# ---------------------------------------------------------------------------
# TCP local-port index
# ---------------------------------------------------------------------------

class TestPortIndex:
    def test_refs_track_connections_and_drain(self):
        engine, wire, a, b = make_pair()
        accepted = []
        b.tcp.listen(9000, accepted.append)
        clients = []

        def connect():
            clients.append(a.tcp.connect(b.my_ip, 9000))

        a.run_kernel(connect)
        a.run_kernel(connect)
        engine.run()
        ports = [tcb.lport for tcb in clients]
        assert len(set(ports)) == 2
        assert a.tcp._lport_refs == {ports[0]: 1, ports[1]: 1}
        for tcb in clients:
            a.run_kernel(tcb.close)
        for tcb in accepted:
            b.run_kernel(tcb.close)
        engine.run()  # through TIME_WAIT; forget() drops the refs
        assert a.tcp.connections == {}
        assert a.tcp._lport_refs == {}

    def test_allocate_port_skips_ports_in_use(self):
        engine, wire, a, b = make_pair()
        b.tcp.listen(9000, lambda tcb: None)
        clients = []
        base = a.tcp.EPHEMERAL_BASE

        def connect_pinned():
            clients.append(a.tcp.connect(b.my_ip, 9000, lport=base))

        def connect_auto():
            clients.append(a.tcp.connect(b.my_ip, 9000))

        a.run_kernel(connect_pinned)
        engine.run()
        # The allocator's probe starts at base, which is now bound: it
        # must skip it in O(1) rather than scan every connection.
        a.run_kernel(connect_auto)
        engine.run()
        assert clients[1].lport == base + 1


# ---------------------------------------------------------------------------
# parallel bench runner
# ---------------------------------------------------------------------------

class TestBenchRunner:
    def test_task_seed_is_stable_and_distinct(self):
        from repro.bench.runner import task_seed
        assert task_seed("figure5") == task_seed("figure5")
        assert task_seed("figure5") != task_seed("figure6")

    def test_report_is_byte_identical_across_jobs(self):
        from repro.bench.runner import run_report
        serial = run_report(quick=True, jobs=1)
        sharded = run_report(quick=True, jobs=2)
        assert serial == sharded

    def test_report_sections_merge_in_declaration_order(self):
        from repro.bench.report import SECTIONS
        from repro.bench.runner import run_report_sections
        sections = run_report_sections(quick=True, jobs=1)
        assert [name for name, _text in sections] == \
            [name for name, _fn in SECTIONS]

    def test_wallclock_fingerprints_match_across_jobs(self):
        from repro.bench.runner import run_wallclock_workloads
        names = ["dispatcher_micro", "udp_pingpong"]
        serial = run_wallclock_workloads(names, quick=True, jobs=1)
        sharded = run_wallclock_workloads(names, quick=True, jobs=2)
        assert list(serial) == names
        assert list(sharded) == names
        for name in names:
            assert serial[name]["fingerprint"] == sharded[name]["fingerprint"]
