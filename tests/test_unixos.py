"""Tests for the monolithic baseline: sockets, boundary costs, splice."""

import pytest

from repro.unixos import SocketError, SpliceForwarder


class TestUdpSockets:
    def test_sendto_recvfrom(self, unix_pair):
        bed = unix_pair
        engine = bed.engine
        results = []

        def server():
            sock = bed.sockets[1].udp_socket()
            yield from sock.bind(7000)
            data, addr = yield from sock.recvfrom()
            results.append((data, addr))

        def client():
            sock = bed.sockets[0].udp_socket()
            yield from sock.bind(7001)
            yield from sock.sendto(b"across the boundary", (bed.ip(1), 7000))
        engine.process(server(), name="server")
        engine.run_process(client(), name="client")
        engine.run()
        assert results == [(b"across the boundary", (bed.ip(0), 7001))]

    def test_bind_conflict(self, unix_pair):
        bed = unix_pair
        engine = bed.engine

        def proc():
            one = bed.sockets[0].udp_socket()
            yield from one.bind(7000)
            two = bed.sockets[0].udp_socket()
            try:
                yield from two.bind(7000)
            except SocketError:
                return "conflict"
        assert engine.run_process(proc()) == "conflict"

    def test_ephemeral_bind(self, unix_pair):
        bed = unix_pair
        engine = bed.engine

        def proc():
            sock = bed.sockets[0].udp_socket()
            port = yield from sock.bind()
            return port
        assert engine.run_process(proc()) >= 32768

    def test_recv_on_unbound_rejected(self, unix_pair):
        sock = unix_pair.sockets[0].udp_socket()
        with pytest.raises(SocketError):
            next(sock.recvfrom())

    def test_close_releases_port(self, unix_pair):
        bed = unix_pair
        engine = bed.engine

        def proc():
            sock = bed.sockets[0].udp_socket()
            yield from sock.bind(7000)
            sock.close()
            again = bed.sockets[0].udp_socket()
            yield from again.bind(7000)
            return "rebound"
        assert engine.run_process(proc()) == "rebound"

    def test_datagram_to_unbound_port_dropped(self, unix_pair):
        bed = unix_pair
        engine = bed.engine

        def client():
            sock = bed.sockets[0].udp_socket()
            yield from sock.bind(7001)
            yield from sock.sendto(b"nobody home", (bed.ip(1), 9999))
            return "sent"
        assert engine.run_process(client()) == "sent"
        engine.run()

    def test_syscall_costs_charged(self, unix_pair):
        """Every socket operation pays the trap + copy costs."""
        bed = unix_pair
        engine = bed.engine
        host = bed.hosts[0]
        payload = bytes(10_000)

        def client():
            sock = bed.sockets[0].udp_socket()
            yield from sock.bind(7001)
            before = host.cpu.busy_time
            yield from sock.sendto(payload, (bed.ip(1), 7000))
            return host.cpu.busy_time - before
        cost = engine.run_process(client())
        floor = (host.costs.syscall_trap + host.costs.socket_layer +
                 len(payload) * host.costs.copy_per_byte)
        assert cost >= floor


class TestTcpSockets:
    def _echo_server(self, bed, port=8000):
        def server():
            listener = bed.sockets[1].tcp_socket()
            yield from listener.listen(port)
            conn = yield from listener.accept()
            while True:
                data = yield from conn.recv()
                if not data:
                    yield from conn.close()
                    return
                yield from conn.send(data)
        bed.engine.process(server(), name="echo-server")

    def test_connect_send_recv(self, unix_pair):
        bed = unix_pair
        self._echo_server(bed)
        engine = bed.engine

        def client():
            sock = bed.sockets[0].tcp_socket()
            yield from sock.connect((bed.ip(1), 8000))
            yield from sock.send(b"echo me")
            data = yield from sock.recv()
            yield from sock.close()
            return data
        assert engine.run_process(client()) == b"echo me"

    def test_connect_refused(self, unix_pair):
        bed = unix_pair
        engine = bed.engine

        def client():
            sock = bed.sockets[0].tcp_socket()
            try:
                yield from sock.connect((bed.ip(1), 9999))
            except SocketError:
                return "refused"
        assert engine.run_process(client()) == "refused"

    def test_bulk_transfer(self, unix_pair):
        bed = unix_pair
        engine = bed.engine
        payload = bytes(range(256)) * 400  # 102400 bytes
        received = []

        def server():
            listener = bed.sockets[1].tcp_socket()
            yield from listener.listen(8000)
            conn = yield from listener.accept()
            total = 0
            while total < len(payload):
                data = yield from conn.recv()
                if not data:
                    break
                received.append(data)
                total += len(data)

        def client():
            sock = bed.sockets[0].tcp_socket()
            yield from sock.connect((bed.ip(1), 8000))
            yield from sock.send(payload)
            yield from sock.close()
        engine.process(server(), name="server")
        engine.run_process(client(), name="client")
        engine.run(until=engine.now + 1_000_000.0)
        assert b"".join(received) == payload

    def test_recv_returns_empty_at_eof(self, unix_pair):
        bed = unix_pair
        engine = bed.engine
        outcome = []

        def server():
            listener = bed.sockets[1].tcp_socket()
            yield from listener.listen(8000)
            conn = yield from listener.accept()
            data = yield from conn.recv()
            outcome.append(data)

        def client():
            sock = bed.sockets[0].tcp_socket()
            yield from sock.connect((bed.ip(1), 8000))
            yield from sock.close()
        engine.process(server(), name="server")
        engine.run_process(client(), name="client")
        engine.run(until=engine.now + 200_000.0)
        assert outcome == [b""]

    def test_accept_without_listen_rejected(self, unix_pair):
        sock = unix_pair.sockets[0].tcp_socket()
        with pytest.raises(SocketError):
            next(sock.accept())


class TestSplice:
    def test_splice_forwards_both_directions(self):
        """The user-level forwarder moves data but is not end-to-end."""
        from repro.bench.testbed import build_testbed
        bed = build_testbed("unix", "ethernet", n_hosts=3)
        engine = bed.engine
        # Host 0 = client, host 1 = forwarder, host 2 = backend.
        splice = SpliceForwarder(bed.sockets[1], 8080, bed.ip(2), 8081)
        splice.start()

        def backend():
            listener = bed.sockets[2].tcp_socket()
            yield from listener.listen(8081)
            conn = yield from listener.accept()
            data = yield from conn.recv()
            yield from conn.send(b"re:" + data)
        engine.process(backend(), name="backend")

        def client():
            sock = bed.sockets[0].tcp_socket()
            yield from sock.connect((bed.ip(1), 8080))
            yield from sock.send(b"hi")
            reply = yield from sock.recv()
            return reply, sock.tcb.raddr
        reply, peer = engine.run_process(client(), name="client")
        assert reply == b"re:hi"
        assert splice.connections_spliced == 1
        assert splice.bytes_forwarded >= 4
        # The client's TCP peer is the forwarder, NOT the backend: the
        # paper's "unable to respect end-to-end semantics".
        assert peer == bed.ip(1)
