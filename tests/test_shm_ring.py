"""The zero-pickle boundary transport: frame packing and shm rings.

The ring's correctness argument is lockstep cursors: both sides apply
the identical wrap rule, so these tests drive a writer mapping and an
independent reader mapping of the same segment through multi-round
push/pop sequences -- including both wrap variants (tail too small for
a record header vs. tail large enough to hold the explicit wrap
marker) -- and assert the reader observes exactly the written records.
Failure modes must be loud: a single record larger than the whole ring
raises, an oversize *batch* is refused atomically (ring untouched, the
caller's cue to take the pickle fallback), and a reader that drains
into a wrap marker raises rather than returning garbage.
"""

import pytest

from repro.sim.shm import (FrameRing, RingError, decode_payload,
                           encode_payload, pack_frame, ring_bytes,
                           unpack_frame)
from repro.sim.shm import _RECORD  # the record header layout


@pytest.fixture
def ring_pair():
    """A writer mapping and an independent reader mapping of one ring."""
    made = []

    def make(size):
        writer = FrameRing(size=size)
        reader = FrameRing(size=size, name=writer.name)
        made.append((writer, reader))
        return writer, reader

    yield make
    for writer, reader in made:
        reader.close()
        writer.close()
        writer.unlink()


def rec(arrival, payload, channel=0, sender=0, seq=1, kind=0):
    return (arrival, channel, sender, seq, kind, payload)


class TestFramePacking:
    def test_roundtrip(self):
        packed = pack_frame(b"\x00\x01payload", "t3-0", "t3-1", 612)
        assert type(packed) is bytes
        data, src, dst, wire = unpack_frame(packed)
        assert data == b"\x00\x01payload"
        assert (src, dst, wire) == ("t3-0", "t3-1", 612)

    def test_empty_data(self):
        data, src, dst, wire = unpack_frame(pack_frame(b"", "a", "b", 0))
        assert data == b"" and (src, dst, wire) == ("a", "b", 0)

    def test_encode_bytes_is_zero_copy_kind(self):
        kind, blob = encode_payload(b"raw")
        assert kind == 0 and blob == b"raw"
        assert decode_payload(kind, blob) == b"raw"

    def test_encode_non_bytes_pickles(self):
        payload = ("tuple", 3, [1.5])
        kind, blob = encode_payload(payload)
        assert kind == 1
        assert decode_payload(kind, blob) == payload


class TestRingBytes:
    def test_default_and_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_RING_KB", raising=False)
        assert ring_bytes() == 256 * 1024
        monkeypatch.setenv("REPRO_SIM_RING_KB", "64")
        assert ring_bytes() == 64 * 1024
        monkeypatch.setenv("REPRO_SIM_RING_KB", "not-a-number")
        assert ring_bytes() == 256 * 1024


class TestFrameRing:
    def test_push_pop_roundtrip_across_mappings(self, ring_pair):
        writer, reader = ring_pair(4096)
        records = [rec(1.5, b"alpha", channel=2, sender=1, seq=7),
                   rec(2.5, b"", channel=0, sender=0, seq=8, kind=1),
                   rec(2.5, b"b" * 100, channel=1, sender=1, seq=9)]
        assert writer.push_all(records) is True
        assert reader.pop(3) == records
        assert writer.records == reader.records == 3

    def test_wrap_with_tail_too_small_for_header(self, ring_pair):
        # need = header + 20; two records leave a tail smaller than a
        # record header, so the wrap is implicit on both sides.
        size = 2 * (_RECORD.size + 20) + 4
        writer, reader = ring_pair(size)
        first = [rec(1.0, b"a" * 20), rec(2.0, b"b" * 20, seq=2)]
        assert writer.push_all(first)
        assert reader.pop(2) == first
        wrapped = [rec(3.0, b"c" * 20, seq=3)]
        assert writer.push_all(wrapped)
        assert reader.pop(1) == wrapped

    def test_wrap_with_explicit_marker(self, ring_pair):
        # One record leaves a tail big enough for a header but not for
        # the next record: the writer parks a wrap marker there and the
        # reader must honor it.
        size = _RECORD.size + 30 + _RECORD.size + 10
        writer, reader = ring_pair(size)
        assert writer.push_all([rec(1.0, b"x" * 30)])
        assert reader.pop(1) == [rec(1.0, b"x" * 30)]
        assert writer.push_all([rec(2.0, b"y" * 30, seq=2)])
        assert reader.pop(1) == [rec(2.0, b"y" * 30, seq=2)]

    def test_many_rounds_stay_in_lockstep(self, ring_pair):
        writer, reader = ring_pair(256)
        for round_no in range(200):
            payload = bytes([round_no % 251]) * (round_no % 60)
            batch = [rec(float(round_no), payload, seq=round_no)]
            assert writer.push_all(batch) is True
            assert reader.pop(1) == batch
        assert writer._offset == reader._offset
        assert writer.records == reader.records == 200

    def test_single_record_larger_than_ring_raises(self, ring_pair):
        writer, _reader = ring_pair(128)
        with pytest.raises(RingError, match="REPRO_SIM_RING_KB"):
            writer.push_all([rec(1.0, b"z" * 256)])

    def test_oversize_batch_refused_atomically(self, ring_pair):
        size = 3 * (_RECORD.size + 16)
        writer, reader = ring_pair(size)
        # Each record fits alone, but four of them exceed the ring: the
        # push must refuse the whole batch without moving the cursor...
        batch = [rec(float(i), bytes([i]) * 16, seq=i) for i in range(4)]
        assert writer.push_all(batch) is False
        assert writer._offset == 0 and writer.records == 0
        # ...so a fitting batch afterwards lands exactly where the
        # reader expects it.
        fits = batch[:3]
        assert writer.push_all(fits) is True
        assert reader.pop(3) == fits

    def test_corrupt_length_fails_loudly(self, ring_pair):
        writer, reader = ring_pair(128)
        # Forge a header whose payload length overruns the ring: the
        # reader must refuse rather than slice garbage bytes.
        _RECORD.pack_into(writer._shm.buf, 0, 1.0, 1, 0, 0, 4096, 0)
        with pytest.raises(RingError, match="over-drained or corrupt"):
            reader.pop(1)
