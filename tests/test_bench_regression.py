"""Tests for the golden-number regression checker (quick subset)."""

import pytest

from repro.bench.regression import GOLDEN, check_all, check_one


class TestGoldenChecks:
    def test_quick_headline_metrics_hold(self):
        rows = check_all(["fig5.ethernet.plexus-interrupt.us",
                          "fig5.ethernet.unix.us",
                          "sec42.ethernet.plexus.mbps"])
        for row in rows:
            assert row["ok"], row

    def test_every_metric_has_sane_tolerance(self):
        for name, (_fn, expected, tolerance) in GOLDEN.items():
            assert expected > 0, name
            assert 0 < tolerance <= 0.2, name

    def test_check_one_record_shape(self):
        record = check_one("fig5.t3.plexus-interrupt.us")
        assert set(record) == {"metric", "expected", "measured",
                               "deviation", "tolerance", "ok"}
        assert record["ok"]

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            check_one("fig99.imaginary")
