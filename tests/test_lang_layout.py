"""Tests for packed record layouts."""

import pytest

from repro.lang import (
    ArrayType,
    INT16,
    INT8,
    Layout,
    LayoutError,
    Scalar,
    UINT16,
    UINT16_LE,
    UINT32,
    UINT8,
)


class TestScalar:
    def test_decode_big_endian(self):
        assert UINT16.decode(b"\x01\x02", 0) == 0x0102

    def test_decode_little_endian(self):
        assert UINT16_LE.decode(b"\x01\x02", 0) == 0x0201

    def test_decode_at_offset(self):
        assert UINT8.decode(b"\x00\x00\x7f", 2) == 0x7F

    def test_encode_roundtrip(self):
        buf = bytearray(4)
        UINT32.encode(buf, 0, 0xDEADBEEF)
        assert UINT32.decode(buf, 0) == 0xDEADBEEF

    def test_signed_decode(self):
        assert INT8.decode(b"\xff", 0) == -1
        assert INT16.decode(b"\x80\x00", 0) == -32768

    def test_signed_encode(self):
        buf = bytearray(2)
        INT16.encode(buf, 0, -2)
        assert bytes(buf) == b"\xff\xfe"

    def test_encode_overflow_rejected(self):
        buf = bytearray(1)
        with pytest.raises(OverflowError):
            UINT8.encode(buf, 0, 256)

    def test_decode_short_buffer_rejected(self):
        with pytest.raises(LayoutError):
            UINT32.decode(b"\x01", 0)

    def test_invalid_size_rejected(self):
        with pytest.raises(LayoutError):
            Scalar("bad", 3)

    def test_invalid_byteorder_rejected(self):
        with pytest.raises(LayoutError):
            Scalar("bad", 2, byteorder="middle")


class TestArrayType:
    def test_size(self):
        assert ArrayType(UINT8, 6).size == 6
        assert ArrayType(UINT16, 3).size == 6

    def test_requires_scalar_element(self):
        layout = Layout("Inner", [("x", UINT8)])
        with pytest.raises(LayoutError):
            ArrayType(layout, 2)

    def test_requires_positive_length(self):
        with pytest.raises(LayoutError):
            ArrayType(UINT8, 0)


class TestLayout:
    def test_offsets_accumulate(self):
        layout = Layout("T", [("a", UINT8), ("b", UINT16), ("c", UINT32)])
        assert layout.offsets == {"a": 0, "b": 1, "c": 3}
        assert layout.size == 7

    def test_field_names_in_order(self):
        layout = Layout("T", [("z", UINT8), ("a", UINT8)])
        assert layout.field_names() == ["z", "a"]

    def test_contains(self):
        layout = Layout("T", [("a", UINT8)])
        assert "a" in layout
        assert "b" not in layout

    def test_duplicate_field_rejected(self):
        with pytest.raises(LayoutError):
            Layout("T", [("a", UINT8), ("a", UINT16)])

    def test_empty_layout_rejected(self):
        with pytest.raises(LayoutError):
            Layout("T", [])

    def test_nested_layout_sizes(self):
        inner = Layout("Inner", [("x", UINT16), ("y", UINT16)])
        outer = Layout("Outer", [("head", UINT8), ("body", inner)])
        assert outer.size == 5
        assert outer.offsets["body"] == 1

    def test_non_scalar_aggregate_rejected(self):
        """The paper restricts VIEW targets to scalar aggregates."""
        with pytest.raises(LayoutError, match="paper sec. 3.2"):
            Layout("T", [("bad", "not a type")])
