"""Figure 7: TCP redirection latency, Plexus vs DIGITAL UNIX splice.

Paper anchors: the user-level forwarder sends each packet through the
protocol stack twice with two boundary copies, so its latency is a large
multiple of the in-kernel redirect's; and it "is unable to respect
end-to-end TCP semantics" while the Plexus node preserves them.
"""

from repro.bench.forwarding import (
    measure_plexus_forwarding,
    measure_unix_forwarding,
)

TRIPS = 10


def test_plexus_redirect_latency(benchmark):
    result = benchmark.pedantic(measure_plexus_forwarding,
                                kwargs={"trips": TRIPS},
                                iterations=1, rounds=1)
    benchmark.extra_info["rtt_us"] = result["rtt"].mean
    benchmark.extra_info["connect_us"] = result["connect_us"]
    # Every request was forwarded by the in-kernel node.
    assert result["forwarded_packets"] > 0
    # End-to-end: the backend terminates the client's TCP connection.
    assert result["end_to_end"]


def test_unix_splice_latency(benchmark):
    result = benchmark.pedantic(measure_unix_forwarding,
                                kwargs={"trips": TRIPS},
                                iterations=1, rounds=1)
    benchmark.extra_info["rtt_us"] = result["rtt"].mean
    assert result["forwarded_bytes"] > 0
    # The client's connection terminates at the splice, not the backend.
    assert not result["end_to_end"]


def test_plexus_forwarding_beats_splice(benchmark):
    def run():
        return (measure_plexus_forwarding(trips=TRIPS),
                measure_unix_forwarding(trips=TRIPS))
    plexus, unix = benchmark.pedantic(run, iterations=1, rounds=1)
    ratio = unix["rtt"].mean / plexus["rtt"].mean
    benchmark.extra_info["plexus_rtt_us"] = plexus["rtt"].mean
    benchmark.extra_info["unix_rtt_us"] = unix["rtt"].mean
    benchmark.extra_info["unix_over_plexus"] = ratio
    # Two extra stack trips + two boundary copies + scheduling: the
    # splice costs a large multiple of the in-kernel redirect.
    assert ratio > 1.8
