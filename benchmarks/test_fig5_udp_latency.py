"""Figure 5: UDP round-trip latency for 8-byte packets.

Paper anchors (microseconds): Plexus-interrupt < 600 on Ethernet, ~350 on
Fore ATM, ~300 on T3; 337/241 with the faster Ethernet/ATM drivers; the
ordering raw-driver < Plexus-interrupt < Plexus-thread < DIGITAL UNIX on
every device.
"""

import pytest

from repro.bench.latency import (
    PAPER_FIGURE5_US,
    measure_plexus_udp_rtt,
    measure_raw_rtt,
    measure_unix_udp_rtt,
)

TRIPS = 8
DEVICES = ("ethernet", "atm", "t3")


@pytest.mark.parametrize("device", DEVICES)
def test_plexus_interrupt_latency(benchmark, device):
    summary = benchmark.pedantic(
        measure_plexus_udp_rtt, args=(device, "interrupt"),
        kwargs={"trips": TRIPS}, iterations=1, rounds=1)
    benchmark.extra_info["rtt_us"] = summary.mean
    paper = PAPER_FIGURE5_US[(device, "plexus-interrupt")]
    benchmark.extra_info["paper_us"] = paper
    # Within 15% of the paper's stated value.
    assert abs(summary.mean - paper) / paper < 0.15


@pytest.mark.parametrize("device", DEVICES)
def test_plexus_thread_latency(benchmark, device):
    summary = benchmark.pedantic(
        measure_plexus_udp_rtt, args=(device, "thread"),
        kwargs={"trips": TRIPS}, iterations=1, rounds=1)
    benchmark.extra_info["rtt_us"] = summary.mean
    interrupt = measure_plexus_udp_rtt(device, "interrupt", trips=TRIPS)
    # Thread-per-event delivery costs real latency, but far less than a
    # full second system would.
    assert summary.mean > interrupt.mean


@pytest.mark.parametrize("device", DEVICES)
def test_unix_latency_substantially_slower(benchmark, device):
    summary = benchmark.pedantic(
        measure_unix_udp_rtt, args=(device,), kwargs={"trips": TRIPS},
        iterations=1, rounds=1)
    benchmark.extra_info["rtt_us"] = summary.mean
    plexus = measure_plexus_udp_rtt(device, "interrupt", trips=TRIPS)
    thread = measure_plexus_udp_rtt(device, "thread", trips=TRIPS)
    # The paper's ordering: DUX slower than both Plexus configurations,
    # and "substantially" slower than the interrupt path (>= 1.5x here).
    assert summary.mean > thread.mean > plexus.mean
    assert summary.mean / plexus.mean > 1.5


@pytest.mark.parametrize("device", DEVICES)
def test_raw_driver_floor(benchmark, device):
    summary = benchmark.pedantic(
        measure_raw_rtt, args=(device,), kwargs={"trips": TRIPS},
        iterations=1, rounds=1)
    benchmark.extra_info["rtt_us"] = summary.mean
    plexus = measure_plexus_udp_rtt(device, "interrupt", trips=TRIPS)
    # The hardware floor sits below the full protocol path, and protocol
    # processing adds only a modest fraction on top of it.
    assert summary.mean < plexus.mean
    assert (plexus.mean - summary.mean) / plexus.mean < 0.35


@pytest.mark.parametrize("device,paper_key", [
    ("ethernet", ("ethernet-fast", "plexus-interrupt")),
    ("atm", ("atm-fast", "plexus-interrupt")),
])
def test_fast_driver_latency(benchmark, device, paper_key):
    summary = benchmark.pedantic(
        measure_plexus_udp_rtt, args=(device, "interrupt"),
        kwargs={"trips": TRIPS, "fast_driver": True}, iterations=1, rounds=1)
    benchmark.extra_info["rtt_us"] = summary.mean
    paper = PAPER_FIGURE5_US[paper_key]
    benchmark.extra_info["paper_us"] = paper
    assert abs(summary.mean - paper) / paper < 0.15


def test_device_ordering(benchmark):
    """Across devices: Ethernet slowest, T3 fastest (wire + driver)."""
    def run():
        return {device: measure_plexus_udp_rtt(device, trips=4).mean
                for device in DEVICES}
    rtts = benchmark.pedantic(run, iterations=1, rounds=1)
    assert rtts["ethernet"] > rtts["atm"] > rtts["t3"]
