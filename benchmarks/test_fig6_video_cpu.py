"""Figure 6: video server CPU utilization vs number of streams (T3).

Paper anchors: 3 Mb/s per stream, the 45 Mb/s T3 saturates at 15
streams; at saturation SPIN uses about *half* the CPU of DIGITAL UNIX;
below saturation the utilization curves grow linearly with offered load.

Section 5.1 client: both systems show similar client CPU because >90% of
the client's work is framebuffer writes.
"""

import pytest

from repro.bench.video import (
    SATURATION_STREAMS,
    measure_video_client,
    measure_video_server,
)

DURATION = 0.4


def test_spin_half_the_cpu_at_saturation(benchmark):
    def run():
        return (measure_video_server("spin", SATURATION_STREAMS, DURATION),
                measure_video_server("unix", SATURATION_STREAMS, DURATION))
    spin, unix = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["spin_util"] = spin["utilization"]
    benchmark.extra_info["unix_util"] = unix["utilization"]
    ratio = unix["utilization"] / spin["utilization"]
    benchmark.extra_info["unix_over_spin"] = ratio
    # "SPIN consumes only half as much of the processor."
    assert 1.7 < ratio < 2.5
    # Both keep up with the deadline load at saturation.
    assert spin["deadline_misses"] == 0


def test_network_saturates_at_fifteen_streams(benchmark):
    def run():
        return (measure_video_server("spin", SATURATION_STREAMS, DURATION),
                measure_video_server("spin", SATURATION_STREAMS + 6, DURATION))
    at_sat, beyond = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["delivered_at_15"] = at_sat["delivered_mbps"]
    benchmark.extra_info["delivered_at_21"] = beyond["delivered_mbps"]
    # 15 streams fill the 45 Mb/s T3; offering more does not deliver more.
    assert at_sat["delivered_mbps"] > 42.0
    assert beyond["delivered_mbps"] <= at_sat["delivered_mbps"] * 1.02


@pytest.mark.parametrize("streams", [1, 5, 10])
def test_utilization_grows_linearly_below_saturation(benchmark, streams):
    result = benchmark.pedantic(measure_video_server,
                                args=("spin", streams, DURATION),
                                iterations=1, rounds=1)
    benchmark.extra_info["utilization"] = result["utilization"]
    one = measure_video_server("spin", 1, DURATION)
    # Linear in stream count within 25%.
    expected = one["utilization"] * streams
    assert abs(result["utilization"] - expected) / expected < 0.25


def test_unix_hits_cpu_wall_before_spin(benchmark):
    """Past saturation the monolithic server runs out of processor."""
    def run():
        return (measure_video_server("spin", 30, DURATION),
                measure_video_server("unix", 30, DURATION))
    spin, unix = benchmark.pedantic(run, iterations=1, rounds=1)
    assert unix["utilization"] > 0.97
    assert spin["utilization"] < 0.92


def test_video_client_framebuffer_bound(benchmark):
    """Section 5.1: client CPU similar on both systems; display dominates."""
    def run():
        return (measure_video_client("spin", DURATION),
                measure_video_client("unix", DURATION))
    spin, unix = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["spin_util"] = spin["utilization"]
    benchmark.extra_info["unix_util"] = unix["utilization"]
    benchmark.extra_info["display_fraction"] = spin["display_fraction"]
    # Both spend >90% of app work writing the framebuffer...
    assert spin["display_fraction"] > 0.9
    assert unix["display_fraction"] > 0.9
    # ...which makes the two systems' utilization similar (within 20%).
    assert abs(spin["utilization"] - unix["utilization"]) / \
        unix["utilization"] < 0.2
