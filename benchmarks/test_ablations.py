"""Ablations of the design choices DESIGN.md calls out.

Each test isolates one mechanism the paper motivates and checks the
direction and rough magnitude of its effect.
"""

from repro.bench.ablations import (
    ack_strategy_ablation,
    rx_ring_ablation,
    active_message_rtt,
    checksum_ablation,
    delivery_mode_ablation,
    view_vs_copy_ablation,
)


def test_checksum_disabled_udp(benchmark):
    """Section 1.1's motivating example: UDP without checksums is faster
    in both latency (per-packet) and throughput (per-byte)."""
    result = benchmark.pedantic(checksum_ablation,
                                kwargs={"trips": 6, "total_bytes": 300_000},
                                iterations=1, rounds=1)
    benchmark.extra_info.update(result)
    assert result["rtt_no_checksum_us"] < result["rtt_checksum_us"]
    assert result["tput_no_checksum_mbps"] > result["tput_checksum_mbps"]
    # On the PIO ATM path the checksum is a two-digit-percent tax.
    assert result["tput_gain"] > 1.05


def test_interrupt_vs_thread_delivery(benchmark):
    """Leaving the interrupt context at every event raise costs latency
    (the two Plexus bars of Figure 5)."""
    result = benchmark.pedantic(delivery_mode_ablation,
                                kwargs={"trips": 6}, iterations=1, rounds=1)
    benchmark.extra_info.update(result)
    assert result["thread_penalty_us"] > 100.0
    # But the thread path is still far from doubling the latency.
    assert result["thread_us"] < 2 * result["interrupt_us"]


def test_view_vs_copy(benchmark):
    """VIEW casts packets in place; the 'safe alternative, copying,
    imposes unacceptable overhead' (sec. 3.2)."""
    result = benchmark.pedantic(view_vs_copy_ablation,
                                kwargs={"packets": 30},
                                iterations=1, rounds=1)
    benchmark.extra_info.update(result)
    assert result["copy_penalty_us"] > 10.0
    assert result["copy_us_per_packet"] > result["view_us_per_packet"]


def test_active_messages_beat_udp(benchmark):
    """Handlers at the Ethernet level skip IP+UDP entirely (sec. 3.3)."""
    result = benchmark.pedantic(active_message_rtt, kwargs={"trips": 6},
                                iterations=1, rounds=1)
    benchmark.extra_info.update(result)
    assert result["active_message_us"] < result["udp_us"]
    assert result["layers_saved_us"] > 50.0


def test_ack_strategy(benchmark):
    """ACK policy on the PIO-limited ATM path: overly sluggish delayed
    ACKs cost throughput; the default is at least as good."""
    result = benchmark.pedantic(ack_strategy_ablation,
                                kwargs={"total_bytes": 250_000},
                                iterations=1, rounds=1)
    benchmark.extra_info.update(result)
    assert result["default_mbps"] >= result["sluggish_mbps"]
    assert result["default_mbps"] > 25.0


def test_rx_ring_sizing(benchmark):
    """A deeper receive ring sheds less of a burst; past the burst depth
    it stops mattering."""
    rows = benchmark.pedantic(rx_ring_ablation, kwargs={"frames": 80},
                              iterations=1, rounds=1)
    by_len = {row["ring_length"]: row for row in rows}
    benchmark.extra_info["loss_pct"] = {
        str(k): v["loss_pct"] for k, v in by_len.items()}
    assert by_len[2]["dropped"] > by_len[8]["dropped"] >= by_len[32]["dropped"]
    assert by_len[64]["dropped"] == 0
    for row in rows:
        assert row["delivered"] + row["dropped"] == 80
