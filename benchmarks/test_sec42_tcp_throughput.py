"""Section 4.2: TCP throughput.

Paper anchors: Ethernet 8.9 Mb/s on both systems (wire-limited); ATM
27.9 Mb/s DIGITAL UNIX vs 33 Mb/s Plexus (PIO/CPU-limited); raw ATM
driver-to-driver ~53 Mb/s; T3 TCP unmeasured in the paper (SPIN DMA bug)
-- reproduced as UDP throughput on both systems instead.
"""

from repro.bench.throughput import (
    PAPER_SECTION42_MBPS,
    measure_plexus_tcp_throughput,
    measure_raw_throughput,
    measure_udp_throughput,
    measure_unix_tcp_throughput,
)

BYTES = 400_000


def test_ethernet_wire_limited(benchmark):
    """Both systems hit the same wire-limited rate on 10 Mb/s Ethernet."""
    def run():
        return (measure_plexus_tcp_throughput("ethernet", 150_000),
                measure_unix_tcp_throughput("ethernet", 150_000))
    plexus, unix = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["plexus_mbps"] = plexus
    benchmark.extra_info["unix_mbps"] = unix
    paper = PAPER_SECTION42_MBPS[("ethernet", "plexus")]
    assert abs(plexus - paper) / paper < 0.1
    assert abs(unix - paper) / paper < 0.1
    # Near-identical: throughput is "much less sensitive to operating
    # system and application overheads than latency".
    assert abs(plexus - unix) / plexus < 0.05


def test_atm_plexus_throughput(benchmark):
    mbps = benchmark.pedantic(measure_plexus_tcp_throughput, args=("atm", BYTES),
                              iterations=1, rounds=1)
    benchmark.extra_info["mbps"] = mbps
    paper = PAPER_SECTION42_MBPS[("atm", "plexus")]
    benchmark.extra_info["paper_mbps"] = paper
    assert abs(mbps - paper) / paper < 0.1


def test_atm_unix_throughput(benchmark):
    mbps = benchmark.pedantic(measure_unix_tcp_throughput, args=("atm", BYTES),
                              iterations=1, rounds=1)
    benchmark.extra_info["mbps"] = mbps
    paper = PAPER_SECTION42_MBPS[("atm", "unix")]
    benchmark.extra_info["paper_mbps"] = paper
    assert abs(mbps - paper) / paper < 0.1


def test_atm_plexus_beats_unix(benchmark):
    """The boundary copies cost DIGITAL UNIX real bandwidth on PIO ATM."""
    def run():
        return (measure_plexus_tcp_throughput("atm", BYTES),
                measure_unix_tcp_throughput("atm", BYTES))
    plexus, unix = benchmark.pedantic(run, iterations=1, rounds=1)
    assert plexus > unix
    # Paper ratio: 33 / 27.9 = 1.18.
    assert 1.05 < plexus / unix < 1.4


def test_atm_raw_driver_ceiling(benchmark):
    """Driver-to-driver PIO tops out around 53 Mb/s, above both TCPs."""
    raw = benchmark.pedantic(measure_raw_throughput, args=("atm",),
                             iterations=1, rounds=1)
    benchmark.extra_info["mbps"] = raw
    paper = PAPER_SECTION42_MBPS[("atm", "raw-driver")]
    assert abs(raw - paper) / paper < 0.1
    plexus = measure_plexus_tcp_throughput("atm", BYTES)
    assert raw > plexus


def test_t3_udp_substitute(benchmark):
    """T3 TCP was unmeasurable in the paper; UDP on both systems instead.

    The T3 is DMA-based, so both systems approach the 45 Mb/s wire and
    Plexus is at least as fast as the monolithic system.
    """
    def run():
        return (measure_udp_throughput("spin", "t3", BYTES),
                measure_udp_throughput("unix", "t3", BYTES))
    plexus, unix = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["plexus_mbps"] = plexus
    benchmark.extra_info["unix_mbps"] = unix
    assert plexus >= unix * 0.98
    assert plexus <= 46.0  # bounded by the 45 Mb/s wire (+measurement slack)
    assert plexus > 30.0  # the DMA device leaves CPU to spare
