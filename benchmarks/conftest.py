"""Shared configuration for the paper-reproduction benchmarks.

Every benchmark here wraps one *simulation run*: pytest-benchmark times
the harness (host-side seconds), while the numbers that correspond to the
paper -- simulated microseconds, Mb/s, utilization -- are attached to
``benchmark.extra_info`` and asserted as shape checks.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once per round under the benchmark fixture."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)


@pytest.fixture
def once():
    return run_once
