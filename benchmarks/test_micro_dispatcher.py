"""Microbenchmarks of the SPIN machinery (paper section 2).

Anchor: "the overhead of invoking each handler is roughly one procedure
call" -- here within a small constant multiple of the calibrated
procedure-call cost.
"""

from repro.bench.micro import (
    dispatcher_overhead_per_handler,
    extension_install_cost,
    guard_demux_cost,
)


def test_dispatch_is_about_one_procedure_call(benchmark):
    result = benchmark.pedantic(dispatcher_overhead_per_handler,
                                iterations=1, rounds=1)
    benchmark.extra_info.update(result)
    # "Roughly one procedure call": within 1x-3x.
    assert 1.0 <= result["ratio_to_procedure_call"] <= 3.0


def test_guard_demux_scales_linearly(benchmark):
    rows = benchmark.pedantic(guard_demux_cost, iterations=1, rounds=1)
    by_count = {row["extensions"]: row["demux_us"] for row in rows}
    benchmark.extra_info["demux_us"] = by_count
    # Linear decision-tree demux: 64 guards cost ~16x the 4-guard case,
    # and even 64 installed extensions demux in under 20 microseconds.
    assert by_count[64] < 20.0
    assert 8.0 < by_count[64] / by_count[4] < 24.0


def test_runtime_install_is_cheap(benchmark):
    result = benchmark.pedantic(extension_install_cost,
                                iterations=1, rounds=1)
    benchmark.extra_info.update(result)
    # Installing + removing an endpoint in a *running* kernel costs
    # microseconds, not a reboot.
    assert result["per_pair_us"] < 50.0
    # And the graph returns to its pre-install shape.
    assert result["edges_after"] == 6
