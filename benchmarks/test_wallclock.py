"""Wall-clock self-benchmark of the simulator substrate.

Two distinct contracts, checked at quick scale so the whole file stays
well under a minute:

* **Determinism (hard failure).**  Every workload's simulated-time
  fingerprint -- final clock, mean RTT, delivered Mb/s, charged CPU --
  must be bit-identical to ``benchmarks/wallclock_baseline.json``.  A
  substrate optimization that moves a single simulated microsecond is a
  correctness bug, not a performance trade.
* **Throughput (warning only).**  Events/sec more than 20% below the
  committed baseline emits a warning.  Wall-clock numbers depend on host
  load, so a slowdown never fails CI; it shows up in the warnings summary
  for a human to judge.

``python -m repro.bench --wallclock`` runs the same suite at full scale
and writes ``BENCH_wallclock.json``.
"""

import gc
import time
import warnings

import pytest

from repro.bench.wallclock import (
    WORKLOADS,
    compare_to_baseline,
    load_baseline,
    run_suite,
    run_workload,
)

SMOKE_BUDGET_S = 60.0


@pytest.fixture(scope="module")
def quick_suite():
    """One quick-scale run of every workload, shared by the tests below.

    Best-of-3 with a collected heap: when this module runs after the rest
    of the benchmark suite, garbage left by earlier tests can otherwise
    halve the measured events/sec and trip the slowdown warning for no
    substrate reason.
    """
    gc.collect()
    wall0 = time.perf_counter()
    suite = run_suite(quick=True, repeats=3)
    suite["suite_wall_s"] = time.perf_counter() - wall0
    return suite


@pytest.fixture(scope="module")
def baseline():
    base = load_baseline()
    if base is None:
        pytest.skip("benchmarks/wallclock_baseline.json missing or unreadable")
    return base


def test_smoke_completes_inside_budget(quick_suite):
    assert quick_suite["suite_wall_s"] < SMOKE_BUDGET_S, (
        "quick wall-clock suite took %.1fs (budget %.0fs)"
        % (quick_suite["suite_wall_s"], SMOKE_BUDGET_S))


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_fingerprint_matches_baseline(quick_suite, baseline, name):
    """The determinism guard: simulated time must not drift at all."""
    expected = baseline["quick"]["workloads"][name]["fingerprint"]
    actual = quick_suite["workloads"][name]["fingerprint"]
    assert actual == expected, (
        "simulated-time fingerprint of %r drifted from the committed "
        "baseline:\n  measured %r\n  expected %r" % (name, actual, expected))


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_throughput_regression_warns_only(quick_suite, baseline, name):
    rows = compare_to_baseline(quick_suite, baseline)
    row = rows[name]
    # Fingerprint errors are asserted above; here only the soft contract.
    for message in row["warnings"]:
        warnings.warn("wallclock %s: %s" % (name, message))
    assert "events_per_sec_vs_baseline" in row


def test_repeats_are_deterministic():
    """run_workload itself raises if repeats disagree; exercise that."""
    record = run_workload("dispatcher_micro", quick=True, repeats=2)
    assert record["fingerprint"]["raises"] == record["scale"]


def test_benchmark_fixture_record(benchmark, quick_suite):
    """Expose the quick-suite numbers through pytest-benchmark's report."""
    result = benchmark.pedantic(
        run_workload, args=("udp_pingpong",),
        kwargs={"quick": True}, iterations=1, rounds=1)
    benchmark.extra_info.update({
        "events_per_sec": result["events_per_sec"],
        "packets_per_sec": result["packets_per_sec"],
        "fingerprint": result["fingerprint"],
    })
    assert result["events_per_sec"] > 0
