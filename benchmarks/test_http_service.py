"""HTTP service latency: the paper's closing demo, plus the CPU-scaling
sensitivity sweep.

Not a numbered figure in the paper, but the demo the conclusion points
at; asserted shape: the in-kernel server wins clearly on small pages
(per-request overhead dominated) and the gap closes on large pages
(wire-dominated, like the Ethernet row of section 4.2).
"""

from repro.bench.http_bench import (
    cpu_scaling_sweep,
    measure_spin_http,
    measure_unix_http,
)


def test_small_page_kernel_server_wins(benchmark):
    def run():
        return (measure_spin_http("/", requests=6),
                measure_unix_http("/", requests=6))
    spin, unix = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["plexus_us"] = spin.mean
    benchmark.extra_info["unix_us"] = unix.mean
    # Per-request boundary costs dominate a 512-byte page.
    assert unix.mean / spin.mean > 1.5


def test_large_page_wire_dominates(benchmark):
    def run():
        return (measure_spin_http("/big", requests=4),
                measure_unix_http("/big", requests=4))
    spin, unix = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["plexus_us"] = spin.mean
    benchmark.extra_info["unix_us"] = unix.mean
    # 16 KB at 10 Mb/s is wire time; OS structure fades (within 20%).
    assert unix.mean / spin.mean < 1.2


def test_gap_scales_with_cpu_speed(benchmark):
    """The Plexus advantage is CPU-structural: halving CPU speed doubles
    the absolute gap, and a faster CPU shrinks it."""
    rows = benchmark.pedantic(cpu_scaling_sweep, kwargs={"trips": 4},
                              iterations=1, rounds=1)
    by_factor = {row["cpu_factor"]: row for row in rows}
    benchmark.extra_info["gaps"] = {
        str(k): v["gap_us"] for k, v in by_factor.items()}
    assert by_factor[2.0]["gap_us"] > by_factor[1.0]["gap_us"] > \
        by_factor[0.5]["gap_us"]
    # The gap is almost exactly proportional to CPU cost.
    ratio = by_factor[2.0]["gap_us"] / by_factor[1.0]["gap_us"]
    assert 1.8 < ratio < 2.2
