#!/usr/bin/env python3
"""Name the worst-covered modules in the job's step summary.

Reads a coverage.py JSON report and appends a table of the five
lowest-coverage files to ``$GITHUB_STEP_SUMMARY`` (stdout too, and
alone when the variable is unset), so a failed coverage gate says
exactly where the missing lines live without anyone downloading the
HTML artifact.  Runs before the ``--fail-under`` gate on purpose: the
summary must exist even when the gate kills the job.
"""

import json
import os
import sys


def main(path: str = "coverage.json", count: int = 5) -> None:
    with open(path) as fh:
        report = json.load(fh)
    files = sorted(
        report["files"].items(),
        key=lambda item: (item[1]["summary"]["percent_covered"], item[0]),
    )
    lines = [
        "### Worst-covered modules",
        "",
        "| module | coverage | missing lines |",
        "| --- | --- | --- |",
    ]
    for name, record in files[:count]:
        summary = record["summary"]
        lines.append(
            "| `%s` | %.1f%% | %d |"
            % (name, summary["percent_covered"], summary["missing_lines"])
        )
    lines += ["", "total: %.2f%% line coverage" % report["totals"]["percent_covered"], ""]
    text = "\n".join(lines)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(text)
    sys.stdout.write(text)


if __name__ == "__main__":
    main(*sys.argv[1:3])
