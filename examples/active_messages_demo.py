#!/usr/bin/env python3
"""Active messages at interrupt level (paper section 3.3, Figure 2).

The extension claims a private ethertype, installs a guard that
discriminates on the Ethernet type field (the VIEW idiom of Figure 2) and
an EPHEMERAL handler that the Ethernet manager allows to run *inside the
network interrupt handler* with a time budget.  Because the path is
device -> guard -> handler, the round trip undercuts even the in-kernel
UDP stack.

The demo also shows the safety machinery firing: a non-ephemeral handler
is rejected at install, and an over-budget handler is terminated.

Run:  python examples/active_messages_demo.py
"""

from repro.apps.active_messages import ActiveMessages
from repro.bench import build_testbed
from repro.bench.latency import measure_plexus_udp_rtt
from repro.bench.stats import summarize
from repro.core import Credential
from repro.lang import ephemeral
from repro.sim import Signal


def remote_counter_demo() -> None:
    """A tiny distributed counter driven by active messages."""
    bed = build_testbed("spin", "ethernet")
    engine = bed.engine
    am_client = ActiveMessages(bed.stacks[0], name="am-client")
    am_server = ActiveMessages(bed.stacks[1], name="am-server")
    client_host = bed.hosts[0]
    client_mac, server_mac = bed.nics[0].address, bed.nics[1].address

    counter = {"value": 0}
    reply = Signal(engine)
    server, client = am_server, client_host

    # handler 0 on the server: add `arg` and reply with the new total.
    @ephemeral
    def add_handler(seq, arg, index):
        counter["value"] += arg
        server.send(client_mac, 1, counter["value"])
    am_server.register(0, add_handler)

    totals = []

    @ephemeral
    def total_handler(seq, arg, index):
        totals.append(arg)
        client.defer(reply.fire)
    am_client.register(1, total_handler)

    samples = []

    def drive():
        for increment in (5, 10, 27):
            start = engine.now
            waiter = reply.wait()
            yield from client_host.kernel_path(
                lambda inc=increment: am_client.send(server_mac, 0, inc))
            yield waiter
            samples.append(engine.now - start)
    engine.run_process(drive())

    rtt = summarize(samples)
    udp = measure_plexus_udp_rtt("ethernet", trips=5)
    print("remote counter via active messages: totals %s" % totals)
    print("  active-message RTT: %6.1f us" % rtt.mean)
    print("  UDP RTT (same wire): %6.1f us" % udp.mean)
    print("  layers skipped are latency saved: %.1f us"
          % (udp.mean - rtt.mean))


def safety_demo() -> None:
    """The manager's policy in action."""
    from repro.core import AccessError
    bed = build_testbed("spin", "ethernet")
    manager = bed.stacks[0].ethernet_manager

    def sloppy_handler(nic, m):      # not declared EPHEMERAL
        pass
    try:
        manager.claim_ethertype(Credential("sloppy"), 0x88B6, sloppy_handler)
        print("BUG: non-ephemeral handler accepted at interrupt level")
    except AccessError as exc:
        print("\nnon-ephemeral handler rejected at install:")
        print("  %s" % exc)

    # An over-budget handler gets terminated, not trusted.
    host = bed.hosts[0]

    @ephemeral
    def hog(nic, m):
        host.cpu.charge(10_000.0, "hog")  # way past the budget
    install = manager.claim_ethertype(Credential("hog"), 0x88B7, hog,
                                      time_limit=30.0)
    event = bed.stacks[0].link_recv_event
    frame = host.mbufs  # noqa: F841

    def poke():
        def work():
            m = host.mbufs.from_bytes(bytes(60), leading_space=0)
            mv = m.writable_data()
            mv[12:14] = (0x88B7).to_bytes(2, "big")
            m.freeze()
            host.dispatcher.raise_event(event, bed.nics[0], m)
        yield from host.kernel_path(work)
    bed.engine.run_process(poke())
    print("over-budget handler terminations: %d (allotment was 30 us)"
          % install.handle.terminations)


def main() -> None:
    remote_counter_demo()
    safety_demo()


if __name__ == "__main__":
    main()
