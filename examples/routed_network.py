#!/usr/bin/env python3
"""A routed topology: two Ethernet segments joined by a forwarding host.

Goes beyond the paper's single-segment testbed to show the substrate
generalizes: two Plexus hosts on different subnets talk TCP through an IP
router (TTL decrement, header re-checksum, longest-prefix routes), and a
traceroute-style probe walks the path using ICMP time-exceeded.

Run:  python examples/routed_network.py
"""

from repro.core import Credential, PlexusStack
from repro.hw import EthernetSegment, LanceEthernet
from repro.net import Router, RouterInterface, ip_aton, ip_ntoa, mac_aton
from repro.sim import Engine, Signal
from repro.spin import SpinKernel

NET_A = ip_aton("10.1.0.0")
NET_B = ip_aton("10.2.0.0")


def build_world():
    engine = Engine()
    seg_a, seg_b = EthernetSegment(engine), EthernetSegment(engine)

    def plexus_host(name, segment, address, index):
        kernel = SpinKernel(engine, name)
        nic = LanceEthernet(engine, "ln0",
                            mac_aton("02:00:00:00:0%d:01" % index))
        kernel.add_nic(nic)
        segment.attach(nic)
        return kernel, PlexusStack(kernel, nic, address)

    kernel_a, stack_a = plexus_host("alpha", seg_a, ip_aton("10.1.0.10"), 1)
    kernel_b, stack_b = plexus_host("beta", seg_b, ip_aton("10.2.0.10"), 2)

    router_kernel = SpinKernel(engine, "router")
    nic_ra = LanceEthernet(engine, "ln0", mac_aton("02:00:00:00:01:fe"))
    nic_rb = LanceEthernet(engine, "ln1", mac_aton("02:00:00:00:02:fe"))
    router_kernel.add_nic(nic_ra)
    router_kernel.add_nic(nic_rb)
    seg_a.attach(nic_ra)
    seg_b.attach(nic_rb)
    router = Router(router_kernel, [
        RouterInterface(nic_ra, ip_aton("10.1.0.1")),
        RouterInterface(nic_rb, ip_aton("10.2.0.1")),
    ])
    router.add_route(NET_A, 16, interface_index=0)
    router.add_route(NET_B, 16, interface_index=1)
    stack_a.ip.add_route(NET_B, 16, gateway=ip_aton("10.1.0.1"))
    stack_b.ip.add_route(NET_A, 16, gateway=ip_aton("10.2.0.1"))
    return engine, kernel_a, stack_a, kernel_b, stack_b, router


def tcp_across_the_router(engine, kernel_a, stack_a, stack_b, router):
    replies = []
    done = Signal(engine)

    def on_accept(tcb):
        tcb.on_data = lambda data, t=tcb: t.send(b"beta saw: " + data)
    stack_b.tcp_manager.listen(Credential("srv"), 9000, on_accept)

    def run():
        def connect():
            tcb = stack_a.tcp_manager.connect(
                Credential("cli"), ip_aton("10.2.0.10"), 9000)
            tcb.on_data = lambda data: (replies.append(data),
                                        kernel_a.defer(done.fire))
            tcb.on_established = lambda: tcb.send(b"hello across subnets")
        waiter = done.wait()
        yield from kernel_a.kernel_path(connect)
        yield waiter
    start = engine.now
    engine.run_process(run())
    print("TCP 10.1.0.10 -> 10.2.0.10 through the router:")
    print("  reply: %r" % replies[0].decode())
    print("  round trip with connection setup: %.1f us" % (engine.now - start))
    print("  packets forwarded by the router: %d" % router.forwarded)


def traceroute(engine, kernel_a, stack_a, destination):
    """Walk the path with increasing TTLs, RFC 1393 style."""
    print("\ntraceroute to %s:" % ip_ntoa(destination))
    hops = []
    got = Signal(engine)
    stack_a.icmp.on_time_exceeded = (
        lambda quote: kernel_a.defer(lambda: got.fire(("expired", None))))
    stack_a.icmp.on_echo_reply = (
        lambda ident, seq, payload, src:
        kernel_a.defer(lambda: got.fire(("reply", src))))

    def probe(ttl):
        def work():
            if ttl >= 2:
                stack_a.icmp.send_echo_request(destination, ident=ttl, seq=1)
            else:
                m = kernel_a.mbufs.from_bytes(b"probe", leading_space=64)
                stack_a.ip.output(m, destination, 99, ttl=ttl)
        waiter = got.wait()
        yield from kernel_a.kernel_path(work)
        result = yield waiter
        hops.append(result)
    for ttl in (1, 2):
        engine.run_process(probe(ttl))
    for index, (kind, src) in enumerate(hops, start=1):
        if kind == "expired":
            print("  hop %d: * time exceeded (the router)" % index)
        else:
            print("  hop %d: %s answered" % (index, ip_ntoa(src)))


def main() -> None:
    engine, kernel_a, stack_a, kernel_b, stack_b, router = build_world()
    tcp_across_the_router(engine, kernel_a, stack_a, stack_b, router)
    traceroute(engine, kernel_a, stack_a, ip_aton("10.2.0.10"))


if __name__ == "__main__":
    main()
