#!/usr/bin/env python3
"""The load-balancing protocol forwarder of paper section 5.2.

Three machines: a client, a front host whose address is the service's
virtual IP, and backends.  Under Plexus, the forwarder is an in-kernel
node installed into the protocol graph at the IP level; it sees *all*
packets for the service port -- SYN and FIN included -- so each client's
TCP connection runs end-to-end against the backend the forwarder picked.
The DIGITAL UNIX comparator is a user-level socket splice.

Run:  python examples/port_forwarder.py
"""

from repro.apps.forwarder import BackendService, PlexusForwarder
from repro.bench import build_testbed
from repro.bench.forwarding import (
    measure_plexus_forwarding,
    measure_unix_forwarding,
)
from repro.core import Credential
from repro.sim import Signal

SERVICE_PORT = 8080


def load_balance_demo() -> None:
    """Round-robin two backends behind one virtual IP."""
    bed = build_testbed("spin", "ethernet", n_hosts=4)
    engine = bed.engine
    client_stack, front_stack, b1_stack, b2_stack = bed.stacks
    vip = bed.ip(1)

    forwarder = PlexusForwarder(front_stack, SERVICE_PORT,
                                backends=[bed.ip(2), bed.ip(3)])
    backend_1 = BackendService(b1_stack, vip, SERVICE_PORT, echo=True,
                               name="backend-1")
    backend_2 = BackendService(b2_stack, vip, SERVICE_PORT, echo=True,
                               name="backend-2")

    replies = []
    done = Signal(engine)
    host = bed.hosts[0]

    def run():
        def connect_four():
            for i in range(4):
                tcb = client_stack.tcp_manager.connect(
                    Credential("client-%d" % i), vip, SERVICE_PORT)

                def on_data(data, n=i):
                    replies.append((n, data))
                    if len(replies) == 4:
                        host.defer(done.fire)
                tcb.on_data = on_data
                tcb.on_established = (
                    lambda t=tcb, n=i: t.send(b"request %d" % n))
        waiter = done.wait()
        yield from host.kernel_path(connect_four)
        yield waiter
    engine.run_process(run())

    print("4 connections to %s:%d (one virtual IP, two backends):"
          % ("10.1.0.2", SERVICE_PORT))
    print("  backend-1 served %d connections, backend-2 served %d"
          % (len(backend_1.connections), len(backend_2.connections)))
    print("  packets through the in-kernel redirect node: %d"
          % forwarder.packets_forwarded)
    print("  front host's own TCP saw %d connections (end-to-end preserved)"
          % len(front_stack.tcp.connections))
    for n, data in sorted(replies):
        assert data == b"request %d" % n


def latency_comparison() -> None:
    """Figure 7: redirect latency under both architectures."""
    plexus = measure_plexus_forwarding(trips=10)
    unix = measure_unix_forwarding(trips=10)
    print("\nrequest/response RTT through the forwarder (Figure 7):")
    print("  %-22s %8.1f us   end-to-end TCP: %s"
          % ("Plexus in-kernel node", plexus["rtt"].mean,
             plexus["end_to_end"]))
    print("  %-22s %8.1f us   end-to-end TCP: %s"
          % ("user-level splice", unix["rtt"].mean, unix["end_to_end"]))
    print("  splice penalty: %.1fx (two stack trips + two boundary copies"
          % (unix["rtt"].mean / plexus["rtt"].mean))
    print("  + scheduling, per direction)")


def main() -> None:
    load_balance_demo()
    latency_comparison()


if __name__ == "__main__":
    main()
