#!/usr/bin/env python3
"""Quickstart: define an application-specific protocol and measure it.

This walks the paper's core loop in ~80 lines:

1. build two SPIN machines on a private Ethernet,
2. write an application-specific UDP echo as in-kernel extensions
   (EPHEMERAL handlers running at interrupt level),
3. exchange packets and measure the round trip,
4. compare with the same application written against the monolithic
   (DIGITAL UNIX-style) socket API.

Run:  python examples/quickstart.py
"""

from repro.bench import build_testbed
from repro.core import Credential
from repro.lang import ephemeral
from repro.sim import Signal


def plexus_echo_rtt(trips: int = 10) -> float:
    """UDP ping-pong between two in-kernel extensions."""
    bed = build_testbed("spin", "ethernet", deliver_mode="interrupt")
    engine = bed.engine
    client_stack, server_stack = bed.stacks
    client_host = bed.hosts[0]

    # -- the server extension: echo every datagram back -----------------
    server_ep = None

    @ephemeral                       # may run in the interrupt handler
    def echo_handler(m, off, src_ip, src_port, dst_ip, dst_port):
        payload = bytes(m.to_bytes()[off:])     # m is READONLY
        server_ep.send(payload, src_ip, src_port)

    server_ep = server_stack.udp_manager.bind(
        Credential("echo-server"), 7007, echo_handler)

    # -- the client extension: note when the reply lands -----------------
    reply = Signal(engine)

    @ephemeral
    def reply_handler(m, off, src_ip, src_port, dst_ip, dst_port):
        client_host.defer(reply.fire)

    client_ep = client_stack.udp_manager.bind(
        Credential("echo-client"), 7001, reply_handler)

    # -- drive it ----------------------------------------------------------
    samples = []

    def ping_loop():
        for _ in range(trips):
            start = engine.now
            waiter = reply.wait()
            yield from client_host.kernel_path(
                lambda: client_ep.send(b"12345678", bed.ip(1), 7007))
            yield waiter
            samples.append(engine.now - start)

    engine.run_process(ping_loop())
    return sum(samples) / len(samples)


def unix_echo_rtt(trips: int = 10) -> float:
    """The same application written against BSD sockets."""
    bed = build_testbed("unix", "ethernet")
    engine = bed.engine
    samples = []

    def server():
        sock = bed.sockets[1].udp_socket()
        yield from sock.bind(7007)
        for _ in range(trips):
            data, addr = yield from sock.recvfrom()
            yield from sock.sendto(data, addr)

    def client():
        sock = bed.sockets[0].udp_socket()
        yield from sock.bind(7001)
        for _ in range(trips):
            start = engine.now
            yield from sock.sendto(b"12345678", (bed.ip(1), 7007))
            yield from sock.recvfrom()
            samples.append(engine.now - start)

    engine.process(server(), name="server")
    engine.run_process(client(), name="client")
    return sum(samples) / len(samples)


def main() -> None:
    plexus = plexus_echo_rtt()
    unix = unix_echo_rtt()
    print("UDP echo round trip, 8-byte payload, 10 Mb/s Ethernet")
    print("  Plexus (in-kernel extension): %6.1f us" % plexus)
    print("  Monolithic (user-level sockets): %6.1f us" % unix)
    print("  speedup: %.2fx  (the paper's Figure 5, in miniature)"
          % (unix / plexus))


if __name__ == "__main__":
    main()
