#!/usr/bin/env python3
"""Define a brand-new protocol on top of IP -- the paper's openness claim.

"An application, regardless of its privilege level, may define
application-specific protocols."  This example builds RDP-lite, a toy
reliable-datagram protocol with its own IP protocol number, header layout
(a VIEW-able record), sequence numbers, and ACKs -- entirely as an
application extension, without touching kernel source.

It also demonstrates the motivating optimization of section 1.1: the
protocol carries a flag that disables its payload checksum, and the demo
measures what that buys.

Run:  python examples/custom_protocol.py
"""

from repro.bench import build_testbed
from repro.core import Credential
from repro.lang import VIEW, Layout, UINT8, UINT16, UINT32, ephemeral
from repro.lang.view import VIEW as _VIEW
from repro.net.checksum import internet_checksum
from repro.sim import Signal

#: RDP-lite's wire header: a scalar aggregate, hence VIEW-able.
RDP_HEADER = Layout("RdpLite.T", [
    ("seq", UINT32),
    ("flags", UINT8),       # bit 0: this is an ACK; bit 1: checksummed
    ("window", UINT8),
    ("checksum", UINT16),
])
RDP_PROTO = 253  # IANA "experimental"
FLAG_ACK = 0x01
FLAG_CSUM = 0x02


class RdpLite:
    """One endpoint of the toy reliable-datagram protocol."""

    def __init__(self, stack, peer_ip: int, use_checksum: bool = True,
                 name: str = "rdp"):
        self.host = stack.host
        self.peer_ip = peer_ip
        self.use_checksum = use_checksum
        self.credential = Credential(name)
        self.send_seq = 0
        self.recv_seq = 0
        self.delivered = []
        self.acked = set()
        self.on_deliver = None
        self._ip_send = stack.ip_manager.send_capability(self.credential)
        endpoint = self

        @ephemeral
        def handler(proto, m, off, src, dst):
            endpoint._input(m, off, src)
        self.install = stack.ip_manager.claim_protocol(
            self.credential, RDP_PROTO, handler, time_limit=500.0)

    # -- sending ----------------------------------------------------------

    def send(self, payload: bytes) -> int:
        """Send one numbered datagram (plain code, kernel context)."""
        self.send_seq += 1
        header = bytearray(RDP_HEADER.size)
        view = VIEW(header, RDP_HEADER)
        view.seq = self.send_seq
        view.flags = FLAG_CSUM if self.use_checksum else 0
        view.checksum = 0
        if self.use_checksum:
            self.host.cpu.charge(
                len(payload) * self.host.costs.checksum_per_byte, "checksum")
            view.checksum = internet_checksum(payload)
        m = self.host.mbufs.from_bytes(bytes(header) + payload,
                                       leading_space=64)
        self._ip_send(m, self.peer_ip, RDP_PROTO)
        return self.send_seq

    def _send_ack(self, seq: int) -> None:
        header = bytearray(RDP_HEADER.size)
        view = VIEW(header, RDP_HEADER)
        view.seq = seq
        view.flags = FLAG_ACK
        m = self.host.mbufs.from_bytes(bytes(header), leading_space=64)
        self._ip_send(m, self.peer_ip, RDP_PROTO)

    # -- receiving -----------------------------------------------------------

    @ephemeral
    def _input(self, m, off, src) -> None:
        data = m.data
        if len(data) < off + RDP_HEADER.size:
            return
        view = _VIEW(data, RDP_HEADER, offset=off)
        if view.flags & FLAG_ACK:
            self.acked.add(view.seq)
            return
        payload = bytes(m.to_bytes()[off + RDP_HEADER.size:])
        if view.flags & FLAG_CSUM:
            self.host.cpu.charge(
                len(payload) * self.host.costs.checksum_per_byte, "checksum")
            if internet_checksum(payload) != view.checksum:
                return  # corrupted: drop, sender will not see an ACK
        if view.seq == self.recv_seq + 1:
            self.recv_seq = view.seq
            self.delivered.append(payload)
            if self.on_deliver is not None:
                self.on_deliver(payload)
        self._send_ack(view.seq)


def run_rdp(use_checksum: bool, messages: int = 10,
            payload_len: int = 2048) -> float:
    """Round-trip message+ack latency of RDP-lite over the ATM interface."""
    bed = build_testbed("spin", "atm")
    engine = bed.engine
    a = RdpLite(bed.stacks[0], bed.ip(1), use_checksum, name="rdp-a")
    b = RdpLite(bed.stacks[1], bed.ip(0), use_checksum, name="rdp-b")
    del b
    host = bed.hosts[0]
    acked = Signal(engine)
    orig_input = a._input

    @ephemeral
    def spying_input(m, off, src):
        orig_input(m, off, src)
        host.defer(acked.fire)
    a._input = spying_input
    # Reinstall with the spy (runtime adaptation at work).
    a.install.uninstall()

    @ephemeral
    def handler(proto, m, off, src, dst):
        spying_input(m, off, src)
    a.install = bed.stacks[0].ip_manager.claim_protocol(
        a.credential, RDP_PROTO, handler, time_limit=500.0)

    samples = []
    payload = bytes(payload_len)

    def drive():
        for _ in range(messages):
            start = engine.now
            waiter = acked.wait()
            yield from host.kernel_path(lambda: a.send(payload))
            yield waiter
            samples.append(engine.now - start)
    engine.run_process(drive())
    assert len(a.acked) == messages
    return sum(samples) / len(samples)


def main() -> None:
    with_csum = run_rdp(use_checksum=True)
    without = run_rdp(use_checksum=False)
    print("RDP-lite: a user-defined reliable-datagram protocol on IP %d"
          % RDP_PROTO)
    print("  2 KB message + ack over ATM, checksummed: %7.1f us" % with_csum)
    print("  same, checksum disabled (sec. 1.1):       %7.1f us" % without)
    print("  the application-specific variant saves %.1f us per message"
          % (with_csum - without))


if __name__ == "__main__":
    main()
