#!/usr/bin/env python3
"""HTTP over the extensible stack -- the paper's closing demo.

"A demonstration of the protocol stack as it services HTTP requests can
be found at http://www-spin.cs.washington.edu."  This example serves that
site's spiritual successor from an in-kernel extension and fetches pages
over real (simulated) TCP, then repeats the exercise on the monolithic
model for comparison.

Run:  python examples/http_demo.py
"""

from repro.apps.httpd import (
    SpinHttpClient,
    SpinHttpServer,
    UnixHttpServer,
    unix_http_get,
)
from repro.bench import build_testbed

PAGES = {
    "/": b"<html><h1>SPIN / Plexus</h1>"
         b"<p>An extensible protocol architecture.</p></html>",
    "/paper": b"Fiuczynski & Bershad, USENIX 1996. " * 40,
    "/source": b"MODULE ActiveMessages; IMPORT Mbuf, Ethernet; ..." * 20,
}


def spin_demo() -> None:
    bed = build_testbed("spin", "ethernet")
    engine = bed.engine
    server = SpinHttpServer(bed.stacks[1], PAGES, port=8088)
    client = SpinHttpClient(bed.stacks[0], bed.ip(1), port=8088)

    print("in-kernel HTTP server (Plexus):")
    for path in ("/", "/paper", "/missing"):
        start = engine.now
        status, body = engine.run_process(client.fetch(path))
        print("  GET %-9s -> %d, %5d bytes, %7.1f us"
              % (path, status, len(body), engine.now - start))
    print("  requests served in the kernel: %d" % server.requests_served)


def unix_demo() -> None:
    bed = build_testbed("unix", "ethernet")
    engine = bed.engine
    server = UnixHttpServer(bed.sockets[1], PAGES, port=8088)

    print("\nuser-level HTTP daemon (monolithic model):")
    for path in ("/", "/paper"):
        start = engine.now
        status, body = engine.run_process(
            unix_http_get(bed.sockets[0], bed.ip(1), path, port=8088))
        print("  GET %-9s -> %d, %5d bytes, %7.1f us"
              % (path, status, len(body), engine.now - start))
    print("  requests served: %d" % server.requests_served)


def main() -> None:
    spin_demo()
    unix_demo()


if __name__ == "__main__":
    main()
