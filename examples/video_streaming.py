#!/usr/bin/env python3
"""The network video system of paper section 5.1.

A video server streams 30 fps video over the 45 Mb/s DEC T3 link to a
displaying client, on both operating-system models, and reports:

* server CPU utilization as streams are added (Figure 6's curves),
* the saturation point where the T3 fills (15 streams at 3 Mb/s each),
* the client-side decomposition showing framebuffer writes dominating.

Run:  python examples/video_streaming.py
"""

from repro.apps.video import VIDEO_PORT_BASE, SpinVideoClient, SpinVideoServer
from repro.bench import build_testbed
from repro.bench.video import measure_video_client, measure_video_server


def stream_one_clip() -> None:
    """A single stream, end to end, with full accounting."""
    bed = build_testbed("spin", "t3")
    client = SpinVideoClient(bed.stacks[1])
    server = SpinVideoServer(bed.stacks[0])
    seconds = 0.5
    frames = int(seconds * server.fps)
    server.add_stream(bed.ip(1), VIDEO_PORT_BASE, frames=frames)
    bed.engine.run(until=seconds * 1.2e6)

    print("one %d-frame clip over T3 (in-kernel server and client):"
          % frames)
    print("  frames sent/displayed: %d/%d, deadline misses: %d"
          % (server.stats.frames_sent, client.frames_displayed,
             server.stats.deadline_misses))
    print("  client display share of app work: %.0f%%  (paper: >90%%)"
          % (client.display_fraction() * 100))


def utilization_curves() -> None:
    """Figure 6: server CPU vs streams for both systems."""
    print("\nserver CPU utilization vs streams (Figure 6):")
    print("  %8s  %12s  %12s  %10s" % ("streams", "SPIN", "DIGITAL-UNIX",
                                       "delivered"))
    for streams in (1, 5, 10, 15, 20):
        spin = measure_video_server("spin", streams, duration_s=0.3)
        unix = measure_video_server("unix", streams, duration_s=0.3)
        print("  %8d  %11.1f%%  %11.1f%%  %7.1f Mb/s"
              % (streams, spin["utilization"] * 100,
                 unix["utilization"] * 100, spin["delivered_mbps"]))
    print("  (the T3 saturates at 15 streams; SPIN uses ~half the CPU)")


def client_comparison() -> None:
    print("\nvideo client (one stream), both systems:")
    for os_name in ("spin", "unix"):
        r = measure_video_client(os_name, duration_s=0.3)
        print("  %-5s client: %.1f%% CPU, %.0f%% of app work is display"
              % (os_name, r["utilization"] * 100,
                 r["display_fraction"] * 100))
    print("  (similar, because the framebuffer dominates -- paper sec. 5.1)")


def main() -> None:
    stream_one_clip()
    utilization_curves()
    client_comparison()


if __name__ == "__main__":
    main()
