#!/usr/bin/env python3
"""Watch the protocol graph work: packet tracing and fault injection.

Attaches a tcpdump-style tracer to both NICs, runs a TCP connection over
a *lossy* Ethernet (5% frame loss, seeded), and prints the decoded trace:
the handshake, data segments, the retransmissions that loss forced, and
the teardown -- all decoded with the same zero-copy VIEW machinery the
kernel's guards use.

Run:  python examples/tracing_and_faults.py
"""

from repro.bench import build_testbed
from repro.core import Credential
from repro.net.trace import PacketTracer
from repro.sim import Signal


def main() -> None:
    bed = build_testbed("spin", "ethernet")
    bed.medium.set_fault_model(loss_rate=0.05, seed=20_25)
    engine = bed.engine

    tracer = PacketTracer(engine)
    tracer.attach(bed.nics[0])

    total = 30_000
    state = {"received": 0, "sent": 0}
    done = Signal(engine)

    def on_accept(tcb):
        def on_data(data):
            state["received"] += len(data)
            if state["received"] >= total:
                bed.hosts[1].defer(done.fire)
        tcb.on_data = on_data
    bed.stacks[1].tcp_manager.listen(Credential("sink"), 9000, on_accept)

    chunk = bytes(8192)

    def run():
        def connect():
            tcb = bed.stacks[0].tcp_manager.connect(
                Credential("source"), bed.ip(1), 9000)

            def pump(_space=None):
                while state["sent"] < total and tcb.send_space > 0:
                    accepted = tcb.send(chunk[:total - state["sent"]])
                    state["sent"] += accepted
                    if accepted == 0:
                        break
            tcb.on_established = pump
            tcb.on_sendable = pump
        yield from bed.hosts[0].kernel_path(connect)
        yield done.wait()
    engine.run_process(run())

    print("transferred %d bytes over a wire losing 5%% of frames"
          % state["received"])
    print("  frames lost on the wire: %d" % bed.medium.frames_lost)
    retransmits = sum(t.retransmits
                      for t in bed.stacks[0].tcp.connections.values())
    print("  sender retransmissions:  %d" % retransmits)

    print("\nfirst 12 frames on the client NIC (tcpdump-style):")
    lines = tracer.render().splitlines()
    print("\n".join(lines[:12]))
    print("  ... %d more frames" % max(0, len(lines) - 12))

    syns = tracer.matching("[SYN]")
    print("\ntrace queries: %d SYN, %d pure ACK-bearing segments, "
          "%d total frames"
          % (len(syns), len(tracer.matching("[ACK]")), len(tracer.records)))


if __name__ == "__main__":
    main()
